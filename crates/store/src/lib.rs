//! # neurofi-store
//!
//! Content-addressed sweep result store: the persistent cache behind
//! cross-campaign dedup in the always-on sweep service.
//!
//! Every measured cell is keyed by a **content digest** of what its
//! value actually depends on — the resolved experiment setup, the
//! resolved fault plan, and the seed(s) — *not* by campaign or grid
//! name. Two submitters sweeping overlapping grids therefore share
//! every overlapping cell: the coordinator looks each cell up here
//! before assigning it to a worker, and records every newly measured
//! cell here once it is journaled. (Digest derivation itself lives in
//! `neurofi-dist`, next to the canonical wire encoding it hashes.)
//!
//! The on-disk format reuses the checkpoint journal's discipline
//! (see `neurofi-dist`'s `checkpoint` module):
//!
//! * plain-text records, one per line, floats as 16-digit hex IEEE-754
//!   bit patterns — a store hit is *bit*-identical to recomputing;
//! * appends flushed per record, so a crash can tear at most the final
//!   line; replay recovers the longest valid prefix and truncates the
//!   torn tail (mid-file corruption, by contrast, fails loudly);
//! * a duplicate append under the same digest must carry identical
//!   bits — differing bits mean a digest collision or a
//!   non-deterministic runner, and both must surface, not cache.
//!
//! Unbounded uptime needs a bounded store: [`Store::compact`] rewrites
//! the file atomically, applying an [`EvictionPolicy`] (size- and/or
//! age-bounded) so the service can run forever on finite disk.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use neurofi_core::SweepCell;

const MAGIC: &str = "neurofi-store v1";

/// Any error produced by the result store.
#[derive(Debug)]
pub enum StoreError {
    /// A file operation failed.
    Io(std::io::Error),
    /// The store file is damaged beyond the torn-tail case replay
    /// tolerates (mid-file corruption, foreign header).
    Corrupt(String),
    /// Two different results were recorded under one digest — a digest
    /// collision or a non-deterministic runner. Either way the store
    /// can no longer be trusted as a cache for this key, so the append
    /// (or replay) fails loudly instead of silently keeping one value.
    Conflict {
        /// The colliding content digest.
        digest: u64,
        /// What collided, with both values' bits.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o failed: {e}"),
            StoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
            StoreError::Conflict { digest, detail } => write!(
                f,
                "store conflict on digest {digest:016x}: {detail} \
                 (digest collision or non-deterministic runner)"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Size/age bounds applied by [`Store::compact`]. `None` fields are
/// unbounded; the default policy evicts nothing (compaction then only
/// rewrites the file).
#[derive(Debug, Clone, Copy, Default)]
pub struct EvictionPolicy {
    /// Keep at most this many records (cells and baselines combined),
    /// dropping the oldest first.
    pub max_records: Option<usize>,
    /// Drop records older than this many seconds (by append stamp).
    pub max_age_secs: Option<u64>,
}

/// What one [`Store::compact`] pass did.
#[derive(Debug, Clone, Copy)]
pub struct CompactReport {
    /// Records surviving the pass.
    pub kept: usize,
    /// Records evicted by the policy.
    pub evicted: usize,
    /// Store file size before, bytes.
    pub bytes_before: u64,
    /// Store file size after, bytes.
    pub bytes_after: u64,
}

/// A point-in-time summary for `repro store stat`.
#[derive(Debug, Clone, Copy)]
pub struct StoreStats {
    /// Cell records held.
    pub cells: usize,
    /// Baseline records held.
    pub baselines: usize,
    /// Store file size, bytes.
    pub file_bytes: u64,
    /// Oldest record's append stamp (unix seconds), if any records.
    pub oldest_stamp: Option<u64>,
    /// Newest record's append stamp (unix seconds), if any records.
    pub newest_stamp: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct StoredCell {
    cell: SweepCell,
    stamp: u64,
}

#[derive(Debug, Clone, Copy)]
struct StoredBaseline {
    accuracy: f64,
    stamp: u64,
}

/// The content-addressed result store: an append-only file plus its
/// in-memory index. One store serves every campaign a coordinator will
/// ever run — records carry no campaign identity, only content digests.
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    writer: BufWriter<File>,
    cells: BTreeMap<u64, StoredCell>,
    baselines: BTreeMap<u64, StoredBaseline>,
}

fn hex_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_bits(token: &str) -> Option<f64> {
    if token.len() != 16 {
        return None;
    }
    u64::from_str_radix(token, 16).ok().map(f64::from_bits)
}

fn parse_digest(token: &str) -> Option<u64> {
    if token.len() != 16 {
        return None;
    }
    u64::from_str_radix(token, 16).ok()
}

fn corrupt(path: &Path, message: impl Into<String>) -> StoreError {
    StoreError::Corrupt(format!("{}: {}", path.display(), message.into()))
}

/// Bit-level equality (`==` on floats would treat `0.0 == -0.0` and
/// miss NaN divergence — the same rule the coordinator's duplicate
/// delivery check uses).
fn same_bits(a: &SweepCell, b: &SweepCell) -> bool {
    a.rel_change.to_bits() == b.rel_change.to_bits()
        && a.fraction.to_bits() == b.fraction.to_bits()
        && a.accuracy.to_bits() == b.accuracy.to_bits()
        && a.relative_change_percent.to_bits() == b.relative_change_percent.to_bits()
}

fn cell_detail(existing: &SweepCell, new: &SweepCell) -> String {
    format!("cell recorded twice with different bits ({existing:?} vs {new:?})")
}

enum Record {
    Cell {
        digest: u64,
        stamp: u64,
        cell: SweepCell,
    },
    Baseline {
        digest: u64,
        stamp: u64,
        accuracy: f64,
    },
}

fn parse_record(line: &str) -> Option<Record> {
    let mut tokens = line.split_ascii_whitespace();
    match tokens.next()? {
        "cell" => {
            let digest = parse_digest(tokens.next()?)?;
            let stamp: u64 = tokens.next()?.parse().ok()?;
            let rel_change = parse_bits(tokens.next()?)?;
            let fraction = parse_bits(tokens.next()?)?;
            let accuracy = parse_bits(tokens.next()?)?;
            let relative_change_percent = parse_bits(tokens.next()?)?;
            tokens.next().is_none().then_some(Record::Cell {
                digest,
                stamp,
                cell: SweepCell {
                    rel_change,
                    fraction,
                    accuracy,
                    relative_change_percent,
                },
            })
        }
        "base" => {
            let digest = parse_digest(tokens.next()?)?;
            let stamp: u64 = tokens.next()?.parse().ok()?;
            let accuracy = parse_bits(tokens.next()?)?;
            tokens.next().is_none().then_some(Record::Baseline {
                digest,
                stamp,
                accuracy,
            })
        }
        _ => None,
    }
}

fn now_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

impl Store {
    /// Opens (or creates) the store at `path`, replaying existing
    /// records with the checkpoint journal's longest-valid-prefix
    /// discipline: a torn trailing line is truncated, so post-recovery
    /// appends land on a clean boundary.
    ///
    /// # Errors
    /// Fails on i/o errors, a foreign header, mid-file corruption, or
    /// conflicting records under one digest.
    pub fn open(path: &Path) -> Result<Store, StoreError> {
        let (cells, baselines) = if path.exists() {
            Store::replay(path)?
        } else {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent)?;
            }
            let mut file = File::create(path)?;
            writeln!(file, "{MAGIC}")?;
            file.sync_all()?;
            (BTreeMap::new(), BTreeMap::new())
        };
        let writer = BufWriter::new(OpenOptions::new().append(true).open(path)?);
        Ok(Store {
            path: path.to_path_buf(),
            writer,
            cells,
            baselines,
        })
    }

    #[allow(clippy::type_complexity)]
    fn replay(
        path: &Path,
    ) -> Result<(BTreeMap<u64, StoredCell>, BTreeMap<u64, StoredBaseline>), StoreError> {
        let text = std::fs::read_to_string(path)?;
        let mut segments = text.split_inclusive('\n');
        let header = segments
            .next()
            .ok_or_else(|| corrupt(path, "store file is empty"))?;
        let expected = format!("{MAGIC}\n");
        if header != expected {
            return Err(corrupt(
                path,
                format!(
                    "not a result store (header `{}`, expected `{MAGIC}`)",
                    header.trim_end()
                ),
            ));
        }
        let mut cells: BTreeMap<u64, StoredCell> = BTreeMap::new();
        let mut baselines: BTreeMap<u64, StoredBaseline> = BTreeMap::new();
        // Every durable record was flushed whole with its newline; a
        // crash mid-append can only tear the final line. Track the valid
        // prefix and truncate anything after it.
        let mut valid_len = header.len();
        for (lineno, segment) in segments.enumerate() {
            let complete = segment.ends_with('\n');
            match parse_record(segment.trim_end_matches('\n')) {
                Some(record) if complete => {
                    match record {
                        Record::Cell {
                            digest,
                            stamp,
                            cell,
                        } => match cells.get(&digest) {
                            Some(existing) if !same_bits(&existing.cell, &cell) => {
                                return Err(StoreError::Conflict {
                                    digest,
                                    detail: cell_detail(&existing.cell, &cell),
                                });
                            }
                            Some(_) => {}
                            None => {
                                cells.insert(digest, StoredCell { cell, stamp });
                            }
                        },
                        Record::Baseline {
                            digest,
                            stamp,
                            accuracy,
                        } => match baselines.get(&digest) {
                            Some(existing) if existing.accuracy.to_bits() != accuracy.to_bits() => {
                                return Err(StoreError::Conflict {
                                    digest,
                                    detail: format!(
                                        "baseline recorded twice with different bits \
                                         ({:?} vs {accuracy:?})",
                                        existing.accuracy
                                    ),
                                });
                            }
                            Some(_) => {}
                            None => {
                                baselines.insert(digest, StoredBaseline { accuracy, stamp });
                            }
                        },
                    }
                    valid_len += segment.len();
                }
                // An unfinished or unparseable trailing line is a torn
                // append: drop it.
                _ if valid_len + segment.len() == text.len() => break,
                _ => {
                    return Err(corrupt(
                        path,
                        format!("corrupt record at line {}", lineno + 2),
                    ));
                }
            }
        }
        if valid_len < text.len() {
            OpenOptions::new()
                .write(true)
                .open(path)?
                .set_len(valid_len as u64)?;
        }
        Ok((cells, baselines))
    }

    /// The store's on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The cell stored under `digest`, if any.
    pub fn get_cell(&self, digest: u64) -> Option<SweepCell> {
        self.cells.get(&digest).map(|s| s.cell)
    }

    /// The baseline accuracy stored under `digest`, if any.
    pub fn get_baseline(&self, digest: u64) -> Option<f64> {
        self.baselines.get(&digest).map(|s| s.accuracy)
    }

    /// Records one measured cell under its content digest and flushes
    /// it to disk. Returns `false` (and appends nothing) when an
    /// identical record already exists.
    ///
    /// # Errors
    /// A bit-different value under an existing digest is a
    /// [`StoreError::Conflict`]; i/o failures propagate.
    pub fn put_cell(&mut self, digest: u64, cell: SweepCell) -> Result<bool, StoreError> {
        if let Some(existing) = self.cells.get(&digest) {
            if !same_bits(&existing.cell, &cell) {
                return Err(StoreError::Conflict {
                    digest,
                    detail: cell_detail(&existing.cell, &cell),
                });
            }
            return Ok(false);
        }
        let stamp = now_secs();
        writeln!(
            self.writer,
            "cell {digest:016x} {stamp} {} {} {} {}",
            hex_bits(cell.rel_change),
            hex_bits(cell.fraction),
            hex_bits(cell.accuracy),
            hex_bits(cell.relative_change_percent),
        )?;
        self.writer.flush()?;
        self.cells.insert(digest, StoredCell { cell, stamp });
        Ok(true)
    }

    /// Records one campaign baseline accuracy under its content digest.
    /// Returns `false` when an identical record already exists.
    ///
    /// # Errors
    /// A bit-different value under an existing digest is a
    /// [`StoreError::Conflict`]; i/o failures propagate.
    pub fn put_baseline(&mut self, digest: u64, accuracy: f64) -> Result<bool, StoreError> {
        if let Some(existing) = self.baselines.get(&digest) {
            if existing.accuracy.to_bits() != accuracy.to_bits() {
                return Err(StoreError::Conflict {
                    digest,
                    detail: format!(
                        "baseline recorded twice with different bits \
                         ({:?} vs {accuracy:?})",
                        existing.accuracy
                    ),
                });
            }
            return Ok(false);
        }
        let stamp = now_secs();
        writeln!(
            self.writer,
            "base {digest:016x} {stamp} {}",
            hex_bits(accuracy)
        )?;
        self.writer.flush()?;
        self.baselines
            .insert(digest, StoredBaseline { accuracy, stamp });
        Ok(true)
    }

    /// Total records held (cells + baselines).
    pub fn len(&self) -> usize {
        self.cells.len() + self.baselines.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time summary (record counts, file size, stamp range).
    ///
    /// # Errors
    /// Propagates the file metadata lookup.
    pub fn stat(&self) -> Result<StoreStats, StoreError> {
        let file_bytes = std::fs::metadata(&self.path)?.len();
        let stamps = self
            .cells
            .values()
            .map(|s| s.stamp)
            .chain(self.baselines.values().map(|s| s.stamp));
        let (oldest, newest) = stamps.fold((None, None), |(lo, hi), s| {
            (
                Some(lo.map_or(s, |l: u64| l.min(s))),
                Some(hi.map_or(s, |h: u64| h.max(s))),
            )
        });
        Ok(StoreStats {
            cells: self.cells.len(),
            baselines: self.baselines.len(),
            file_bytes,
            oldest_stamp: oldest,
            newest_stamp: newest,
        })
    }

    /// Rewrites the store file, applying `policy` relative to `now`
    /// (unix seconds): records older than `max_age_secs` are dropped,
    /// then the oldest records beyond `max_records` are dropped. The
    /// rewrite is atomic (temp file + rename), so a crash mid-compact
    /// leaves the original store intact.
    ///
    /// # Errors
    /// Propagates i/o failures.
    pub fn compact(
        &mut self,
        policy: &EvictionPolicy,
        now: u64,
    ) -> Result<CompactReport, StoreError> {
        let bytes_before = std::fs::metadata(&self.path)?.len();
        let total = self.len();

        if let Some(max_age) = policy.max_age_secs {
            let cutoff = now.saturating_sub(max_age);
            self.cells.retain(|_, s| s.stamp >= cutoff);
            self.baselines.retain(|_, s| s.stamp >= cutoff);
        }
        if let Some(max_records) = policy.max_records {
            let over = self.len().saturating_sub(max_records);
            if over > 0 {
                // Collect (stamp, kind, digest), evict the `over` oldest.
                let mut stamps: Vec<(u64, bool, u64)> = self
                    .cells
                    .iter()
                    .map(|(&d, s)| (s.stamp, true, d))
                    .chain(self.baselines.iter().map(|(&d, s)| (s.stamp, false, d)))
                    .collect();
                stamps.sort_unstable();
                for &(_, is_cell, digest) in stamps.iter().take(over) {
                    if is_cell {
                        self.cells.remove(&digest);
                    } else {
                        self.baselines.remove(&digest);
                    }
                }
            }
        }

        // Deterministic record order (by digest) so two compactions of
        // the same contents produce byte-identical files: the BTreeMap
        // index iterates in digest order by construction.
        let tmp = self.path.with_extension("compact-tmp");
        {
            let mut file = File::create(&tmp)?;
            writeln!(file, "{MAGIC}")?;
            for (digest, s) in &self.cells {
                writeln!(
                    file,
                    "cell {digest:016x} {} {} {} {} {}",
                    s.stamp,
                    hex_bits(s.cell.rel_change),
                    hex_bits(s.cell.fraction),
                    hex_bits(s.cell.accuracy),
                    hex_bits(s.cell.relative_change_percent),
                )?;
            }
            for (digest, s) in &self.baselines {
                writeln!(
                    file,
                    "base {digest:016x} {} {}",
                    s.stamp,
                    hex_bits(s.accuracy)
                )?;
            }
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.writer = BufWriter::new(OpenOptions::new().append(true).open(&self.path)?);

        let bytes_after = std::fs::metadata(&self.path)?.len();
        Ok(CompactReport {
            kept: self.len(),
            evicted: total - self.len(),
            bytes_before,
            bytes_after,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("neurofi-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("results.store")
    }

    fn cell(accuracy: f64) -> SweepCell {
        SweepCell {
            rel_change: -0.2,
            fraction: 0.75,
            accuracy,
            relative_change_percent: accuracy * -10.0,
        }
    }

    #[test]
    fn store_round_trips_bit_exactly() {
        let path = temp_path("roundtrip");
        let mut store = Store::open(&path).unwrap();
        let awkward = cell(0.1f64.next_up());
        assert!(store.put_cell(0xfeed, awkward).unwrap());
        assert!(store.put_baseline(0xbeef, 0.5625f64.next_up()).unwrap());
        // Identical re-puts are no-ops, not appends.
        assert!(!store.put_cell(0xfeed, awkward).unwrap());
        assert!(!store.put_baseline(0xbeef, 0.5625f64.next_up()).unwrap());
        drop(store);

        let store = Store::open(&path).unwrap();
        assert_eq!(
            store.get_cell(0xfeed).unwrap().accuracy.to_bits(),
            awkward.accuracy.to_bits()
        );
        assert_eq!(
            store.get_baseline(0xbeef).unwrap().to_bits(),
            0.5625f64.next_up().to_bits()
        );
        assert!(
            store.get_cell(0xbeef).is_none(),
            "kinds keep separate keyspaces"
        );
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn conflicting_put_fails_loudly() {
        let path = temp_path("conflict");
        let mut store = Store::open(&path).unwrap();
        store.put_cell(7, cell(0.5)).unwrap();
        let err = store.put_cell(7, cell(0.5f64.next_up())).unwrap_err();
        assert!(
            matches!(err, StoreError::Conflict { digest: 7, .. }),
            "{err}"
        );
        store.put_baseline(9, 0.5).unwrap();
        let err = store.put_baseline(9, 0.25).unwrap_err();
        assert!(
            matches!(err, StoreError::Conflict { digest: 9, .. }),
            "{err}"
        );
        // The store is still usable for other keys after a refused put.
        assert!(store.put_cell(8, cell(0.25)).unwrap());
    }

    #[test]
    fn conflicting_records_on_disk_fail_replay() {
        let path = temp_path("disk-conflict");
        let mut store = Store::open(&path).unwrap();
        store.put_cell(7, cell(0.5)).unwrap();
        drop(store);
        // Forge a bit-different duplicate as a *complete* record.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(
            file,
            "cell {:016x} 1 {} {} {} {}",
            7,
            hex_bits(-0.2),
            hex_bits(0.75),
            hex_bits(0.5f64.next_up()),
            hex_bits(-5.0),
        )
        .unwrap();
        drop(file);
        assert!(matches!(
            Store::open(&path),
            Err(StoreError::Conflict { digest: 7, .. })
        ));
    }

    #[test]
    fn torn_trailing_record_is_dropped() {
        let path = temp_path("torn");
        let mut store = Store::open(&path).unwrap();
        store.put_cell(1, cell(0.25)).unwrap();
        drop(store);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        write!(file, "cell 00000000000000").unwrap();
        drop(file);

        let mut store = Store::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        // Recovery truncated the torn bytes: post-recovery appends land
        // on a clean boundary and survive the next replay.
        store.put_cell(2, cell(0.75)).unwrap();
        drop(store);
        let store = Store::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.get_cell(2).is_some());
    }

    #[test]
    fn foreign_files_are_refused() {
        let path = temp_path("foreign");
        std::fs::write(&path, "neurofi-dist-journal v1 digest=0 cells=4\n").unwrap();
        assert!(matches!(Store::open(&path), Err(StoreError::Corrupt(_))));
        std::fs::write(&path, "").unwrap();
        assert!(matches!(Store::open(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = temp_path("midfile");
        let mut store = Store::open(&path).unwrap();
        store.put_cell(1, cell(0.5)).unwrap();
        store.put_cell(2, cell(0.5)).unwrap();
        drop(store);
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("cell 0000000000000001", "cell xxxx", 1);
        assert_ne!(text, corrupted);
        std::fs::write(&path, corrupted).unwrap();
        assert!(matches!(Store::open(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn compaction_applies_size_and_age_bounds() {
        let path = temp_path("compact");
        let mut store = Store::open(&path).unwrap();
        for digest in 0..10u64 {
            store.put_cell(digest, cell(digest as f64 / 10.0)).unwrap();
        }
        store.put_baseline(99, 0.5).unwrap();
        let stats = store.stat().unwrap();
        assert_eq!((stats.cells, stats.baselines), (10, 1));

        // No policy: a pure rewrite keeps everything.
        let report = store
            .compact(&EvictionPolicy::default(), now_secs())
            .unwrap();
        assert_eq!((report.kept, report.evicted), (11, 0));

        // Size bound: drop down to 4 records (oldest-first; all stamps
        // are equal here, so any 4 survive — the count is what matters).
        let report = store
            .compact(
                &EvictionPolicy {
                    max_records: Some(4),
                    max_age_secs: None,
                },
                now_secs(),
            )
            .unwrap();
        assert_eq!((report.kept, report.evicted), (4, 7));
        assert!(report.bytes_after < report.bytes_before);
        drop(store);
        let mut store = Store::open(&path).unwrap();
        assert_eq!(store.len(), 4, "compaction survives reopen");
        // The store still accepts appends after compaction.
        store.put_cell(1000, cell(0.9)).unwrap();
        assert_eq!(store.len(), 5);

        // Age bound far in the future evicts everything.
        let report = store
            .compact(
                &EvictionPolicy {
                    max_records: None,
                    max_age_secs: Some(0),
                },
                now_secs() + 1_000_000,
            )
            .unwrap();
        assert_eq!(report.kept, 0);
        assert!(store.is_empty());
    }

    #[test]
    fn compaction_is_deterministic() {
        let path_a = temp_path("det-a");
        let path_b = temp_path("det-b");
        // Same contents inserted in different orders compact to
        // byte-identical files (modulo stamps, pinned equal here by
        // rewriting them).
        let mut a = Store::open(&path_a).unwrap();
        let mut b = Store::open(&path_b).unwrap();
        for d in [3u64, 1, 2] {
            a.put_cell(d, cell(d as f64)).unwrap();
        }
        for d in [2u64, 3, 1] {
            b.put_cell(d, cell(d as f64)).unwrap();
        }
        a.compact(&EvictionPolicy::default(), 0).unwrap();
        b.compact(&EvictionPolicy::default(), 0).unwrap();
        let text_a = std::fs::read_to_string(&path_a).unwrap();
        let text_b = std::fs::read_to_string(&path_b).unwrap();
        // Strip stamps (column 3) before comparing: wall-clock stamps
        // may differ across the two stores.
        let strip = |text: &str| -> Vec<String> {
            text.lines()
                .map(|l| {
                    let mut t: Vec<&str> = l.split(' ').collect();
                    if t.len() > 2 {
                        t.remove(2);
                    }
                    t.join(" ")
                })
                .collect()
        };
        assert_eq!(strip(&text_a), strip(&text_b));
    }
}
