//! Sparse-vs-dense engine agreement on the locked paper circuits.
//!
//! The golden paper grids are frozen against the dense engine; these
//! tests pin the sparse engine to the same answers on the circuits
//! behind those grids — the Axon Hillock transient bench (Figs. 2c/3),
//! its threshold DC sweep (Fig. 6a), and the voltage-amplifier I&F
//! transient bench — within 1e-9 relative, so switching engines can
//! never silently move a paper number.

use neurofi_analog::axon_hillock::InputSpec;
use neurofi_analog::{AxonHillock, Engine, VoltageAmplifierIf};
use neurofi_spice::{Netlist, SolveOptions, TranSpec, Waveform};

const NANO: f64 = 1.0e-9;

fn assert_close(dense: &[f64], sparse: &[f64], what: &str) {
    assert_eq!(dense.len(), sparse.len(), "{what}: length mismatch");
    for (i, (d, s)) in dense.iter().zip(sparse).enumerate() {
        let tol = 1.0e-9 * d.abs().max(1.0);
        assert!((d - s).abs() <= tol, "{what}[{i}]: dense {d} vs sparse {s}");
    }
}

#[test]
fn axon_hillock_transient_matches_across_engines() {
    let neuron = AxonHillock::default();
    let input = InputSpec::paper_axon_hillock();
    let mut net = Netlist::new();
    let nodes = neuron.build(&mut net, "ah", 1.0).unwrap();
    net.vsource("VDD", nodes.vdd, Netlist::GROUND, Waveform::Dc(1.0))
        .unwrap();
    net.isource("IIN", Netlist::GROUND, nodes.mem, input.waveform())
        .unwrap();
    let circuit = net.compile().unwrap();
    let spec = TranSpec::new(2.0e-6, 2.0 * NANO).with_uic();
    let dense = circuit.tran_with_engine(Engine::Dense, &spec).unwrap();
    let sparse = circuit.tran_with_engine(Engine::Sparse, &spec).unwrap();
    assert_close(dense.times(), sparse.times(), "ah times");
    assert_close(
        &dense.voltage(nodes.mem),
        &sparse.voltage(nodes.mem),
        "ah vmem",
    );
    assert_close(
        &dense.voltage(nodes.out),
        &sparse.voltage(nodes.out),
        "ah vout",
    );
}

#[test]
fn axon_hillock_threshold_sweep_matches_across_engines() {
    let neuron = AxonHillock::default();
    let mut net = Netlist::new();
    let nodes = neuron.build(&mut net, "ah", 1.0).unwrap();
    net.vsource("VDD", nodes.vdd, Netlist::GROUND, Waveform::Dc(1.0))
        .unwrap();
    net.vsource("VMEM", nodes.mem, Netlist::GROUND, Waveform::Dc(0.0))
        .unwrap();
    let circuit = net.compile().unwrap();
    let values: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
    let opts = SolveOptions::default();
    let dense = circuit
        .dc_sweep_with_engine(Engine::Dense, "VMEM", &values, &opts)
        .unwrap();
    let sparse = circuit
        .dc_sweep_with_engine(Engine::Sparse, "VMEM", &values, &opts)
        .unwrap();
    let d: Vec<f64> = dense.iter().map(|op| op.voltage(nodes.out)).collect();
    let s: Vec<f64> = sparse.iter().map(|op| op.voltage(nodes.out)).collect();
    assert_close(&d, &s, "ah threshold sweep vout");
}

#[test]
fn vamp_if_transient_matches_across_engines() {
    let neuron = VoltageAmplifierIf::default();
    let input = InputSpec::paper_vamp_if();
    let mut net = Netlist::new();
    let nodes = neuron.build(&mut net, "vif", 1.0).unwrap();
    net.vsource("VDD", nodes.vdd, Netlist::GROUND, Waveform::Dc(1.0))
        .unwrap();
    net.isource("IIN", Netlist::GROUND, nodes.mem, input.waveform())
        .unwrap();
    let circuit = net.compile().unwrap();
    let spec = TranSpec::new(20.0e-6, 20.0 * NANO).with_uic();
    let dense = circuit.tran_with_engine(Engine::Dense, &spec).unwrap();
    let sparse = circuit.tran_with_engine(Engine::Sparse, &spec).unwrap();
    assert_close(
        &dense.voltage(nodes.mem),
        &sparse.voltage(nodes.mem),
        "vif vmem",
    );
    assert_close(
        &dense.voltage(nodes.amp_out),
        &sparse.voltage(nodes.amp_out),
        "vif amp_out",
    );
}
