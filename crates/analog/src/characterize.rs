//! Characterisation sweeps regenerating the paper's circuit-level figures.
//!
//! Each function runs a family of simulations and returns `(x, y)` series
//! ready for the reproduction harness in `neurofi-bench`:
//!
//! | function | paper figure |
//! |---|---|
//! | [`driver_amplitude_vs_vdd`] | Fig. 5b |
//! | [`ah_period_vs_amplitude`], [`if_period_vs_amplitude`] | Fig. 5c |
//! | [`ah_threshold_vs_vdd`], [`if_threshold_vs_vdd`] | Fig. 6a |
//! | [`ah_period_vs_vdd`] | Fig. 6b |
//! | [`if_period_vs_vdd`] | Fig. 6c |
//! | [`sizing_threshold_sweep`] | Fig. 9c |
//! | [`dummy_rate_vs_vdd`] | Fig. 10c |
//! | [`neuron_average_power`], driver `supply_power` | §V overheads |

use neurofi_spice::error::Result;
use neurofi_spice::measure;
use neurofi_spice::units::NANO;

use crate::axon_hillock::{AxonHillock, InputSpec};
use crate::driver::{CurrentDriver, RobustCurrentDriver};
use crate::dummy::DummyNeuron;
use crate::transfer::PowerTransferTable;
use crate::vamp_if::VoltageAmplifierIf;
use crate::NeuronKind;

/// The VDD grid used throughout the paper's sweeps: 0.8 to 1.2 V.
pub fn paper_vdd_grid() -> Vec<f64> {
    vec![0.8, 0.9, 1.0, 1.1, 1.2]
}

/// The input-amplitude grid implied by Fig. 5b/5c: the driver outputs at
/// the paper's VDD grid (136…264 nA).
pub fn paper_amplitude_grid() -> Vec<f64> {
    vec![
        136.0 * NANO,
        168.0 * NANO,
        200.0 * NANO,
        232.0 * NANO,
        264.0 * NANO,
    ]
}

/// Driver output amplitude over a VDD sweep (Fig. 5b). Returns
/// `(vdd, amplitude_amperes)` pairs.
///
/// # Errors
/// Propagates solver failures.
pub fn driver_amplitude_vs_vdd(driver: &CurrentDriver, vdds: &[f64]) -> Result<Vec<(f64, f64)>> {
    vdds.iter()
        .map(|&v| driver.output_amplitude(v).map(|a| (v, a)))
        .collect()
}

/// Robust-driver output amplitude over a VDD sweep (Fig. 9b defense
/// verification).
///
/// # Errors
/// Propagates solver failures.
pub fn robust_driver_amplitude_vs_vdd(
    driver: &RobustCurrentDriver,
    vdds: &[f64],
) -> Result<Vec<(f64, f64)>> {
    vdds.iter()
        .map(|&v| driver.output_amplitude(v).map(|a| (v, a)))
        .collect()
}

/// Axon Hillock membrane threshold over a VDD sweep (Fig. 6a).
///
/// # Errors
/// Propagates solver failures.
pub fn ah_threshold_vs_vdd(neuron: &AxonHillock, vdds: &[f64]) -> Result<Vec<(f64, f64)>> {
    vdds.iter()
        .map(|&v| neuron.threshold(v).map(|t| (v, t)))
        .collect()
}

/// VAIF effective threshold over a VDD sweep (Fig. 6a).
///
/// # Errors
/// Propagates solver failures.
pub fn if_threshold_vs_vdd(neuron: &VoltageAmplifierIf, vdds: &[f64]) -> Result<Vec<(f64, f64)>> {
    vdds.iter()
        .map(|&v| neuron.threshold(v).map(|t| (v, t)))
        .collect()
}

/// Axon Hillock firing period versus input amplitude at VDD = 1 V
/// (Fig. 5c). Returns `(amplitude, period_seconds)`.
///
/// # Errors
/// Propagates solver failures.
pub fn ah_period_vs_amplitude(neuron: &AxonHillock, amplitudes: &[f64]) -> Result<Vec<(f64, f64)>> {
    let base = InputSpec::paper_axon_hillock();
    amplitudes
        .iter()
        .map(|&a| {
            neuron
                .spike_period(1.0, &base.with_amplitude(a))
                .map(|p| (a, p))
        })
        .collect()
}

/// VAIF firing period versus input amplitude at VDD = 1 V (Fig. 5c).
///
/// # Errors
/// Propagates solver failures.
pub fn if_period_vs_amplitude(
    neuron: &VoltageAmplifierIf,
    amplitudes: &[f64],
) -> Result<Vec<(f64, f64)>> {
    let base = InputSpec::paper_vamp_if();
    amplitudes
        .iter()
        .map(|&a| {
            neuron
                .spike_period(1.0, &base.with_amplitude(a))
                .map(|p| (a, p))
        })
        .collect()
}

/// Axon Hillock firing period over a VDD sweep with fixed input (Fig. 6b).
///
/// # Errors
/// Propagates solver failures.
pub fn ah_period_vs_vdd(neuron: &AxonHillock, vdds: &[f64]) -> Result<Vec<(f64, f64)>> {
    let input = InputSpec::paper_axon_hillock();
    vdds.iter()
        .map(|&v| neuron.spike_period(v, &input).map(|p| (v, p)))
        .collect()
}

/// VAIF firing period over a VDD sweep with fixed input (Fig. 6c).
///
/// # Errors
/// Propagates solver failures.
pub fn if_period_vs_vdd(neuron: &VoltageAmplifierIf, vdds: &[f64]) -> Result<Vec<(f64, f64)>> {
    let input = InputSpec::paper_vamp_if();
    vdds.iter()
        .map(|&v| neuron.spike_period(v, &input).map(|p| (v, p)))
        .collect()
}

/// One row of the Fig. 9c sizing sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingRow {
    /// First-inverter N:P strength ratio.
    pub ratio: f64,
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Measured membrane threshold, volts.
    pub threshold: f64,
    /// Relative change versus the same sizing at VDD = 1 V, percent.
    pub change_percent: f64,
}

/// Fig. 9c: membrane-threshold sensitivity versus first-inverter sizing.
/// For each ratio the threshold is measured at VDD = 1 V (reference) and at
/// each entry of `vdds`.
///
/// # Errors
/// Propagates solver failures.
pub fn sizing_threshold_sweep(ratios: &[f64], vdds: &[f64]) -> Result<Vec<SizingRow>> {
    let mut rows = Vec::new();
    for &ratio in ratios {
        let neuron = AxonHillock::default().with_first_inverter_ratio(ratio);
        let reference = neuron.threshold(1.0)?;
        for &vdd in vdds {
            let threshold = neuron.threshold(vdd)?;
            rows.push(SizingRow {
                ratio,
                vdd,
                threshold,
                change_percent: (threshold - reference) / reference * 100.0,
            });
        }
    }
    Ok(rows)
}

/// Fig. 10c: dummy-neuron spike rate over a VDD sweep. Returns
/// `(vdd, rate_hz)`.
///
/// # Errors
/// Propagates solver failures.
pub fn dummy_rate_vs_vdd(kind: NeuronKind, vdds: &[f64]) -> Result<Vec<(f64, f64)>> {
    let dummy = DummyNeuron::new(kind);
    vdds.iter()
        .map(|&v| dummy.spike_rate(v).map(|r| (v, r)))
        .collect()
}

/// Average supply power of a neuron during steady-state firing, watts.
/// Used for the defense power-overhead table (§V).
///
/// # Errors
/// Propagates solver failures.
pub fn neuron_average_power(
    kind: NeuronKind,
    ah: &AxonHillock,
    vif: &VoltageAmplifierIf,
    vdd: f64,
) -> Result<f64> {
    match kind {
        NeuronKind::AxonHillock => {
            let input = InputSpec::paper_axon_hillock();
            let wave = ah.simulate(vdd, &input, 30.0e-6, 20.0e-9)?;
            Ok(wave.average_supply_power())
        }
        NeuronKind::VoltageAmplifierIf => {
            let input = InputSpec::paper_vamp_if();
            let wave = vif.simulate(vdd, &input, 400.0e-6, 50.0e-9, true)?;
            Ok(wave.average_supply_power())
        }
    }
}

/// Runs the full circuit characterisation needed by the network-level
/// attack models and packs it into a [`PowerTransferTable`].
///
/// This is the measured counterpart of
/// [`PowerTransferTable::paper_nominal`].
///
/// # Errors
/// Propagates solver failures.
pub fn measured_transfer_table(vdds: &[f64]) -> Result<PowerTransferTable> {
    let driver = CurrentDriver::default();
    let ah = AxonHillock::default();
    let vif = VoltageAmplifierIf::default();
    let drive = driver_amplitude_vs_vdd(&driver, vdds)?;
    let ah_thr = ah_threshold_vs_vdd(&ah, vdds)?;
    let if_thr = if_threshold_vs_vdd(&vif, vdds)?;
    Ok(PowerTransferTable::from_measurements(
        1.0, &drive, &ah_thr, &if_thr,
    ))
}

/// Converts an `(x, y)` series into `(x, percent_change_vs_reference)`
/// where the reference is the `y` at the `x` closest to `x_ref`.
///
/// Degenerate inputs are handled without panicking: an empty series
/// yields an empty result, NaN `x` values sort last in the reference
/// search (`total_cmp`), and a zero or non-finite reference flows
/// through [`measure::percent_change`]'s fail-closed semantics.
pub fn to_percent_change(series: &[(f64, f64)], x_ref: f64) -> Vec<(f64, f64)> {
    let Some(reference) = series
        .iter()
        .min_by(|a, b| (a.0 - x_ref).abs().total_cmp(&(b.0 - x_ref).abs()))
        .map(|&(_, y)| y)
    else {
        return Vec::new();
    };
    series
        .iter()
        .map(|&(x, y)| (x, measure::percent_change(y, reference)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_change_helper() {
        let series = [(0.8, 8.0), (1.0, 10.0), (1.2, 12.0)];
        let pct = to_percent_change(&series, 1.0);
        assert!((pct[0].1 + 20.0).abs() < 1e-12);
        assert!((pct[2].1 - 20.0).abs() < 1e-12);
    }

    #[test]
    fn grids_are_sane() {
        assert_eq!(paper_vdd_grid().len(), 5);
        assert_eq!(paper_amplitude_grid().len(), 5);
        assert!((paper_amplitude_grid()[2] - 200.0e-9).abs() < 1e-15);
    }

    #[test]
    fn measured_transfer_table_matches_paper_shape() {
        // Coarse grid to keep the test fast; endpoints are what matter.
        let table = measured_transfer_table(&[0.8, 1.0, 1.2]).unwrap();
        let lo = table.sample(0.8);
        let hi = table.sample(1.2);
        // Drive: paper −32%/+32%; accept ±24..42%.
        assert!(lo.drive_scale < 0.76 && lo.drive_scale > 0.58, "{lo:?}");
        assert!(hi.drive_scale > 1.24 && hi.drive_scale < 1.42, "{hi:?}");
        // Thresholds: paper ≈∓18%; accept 10..26%.
        assert!(
            lo.ah_threshold_scale < 0.90 && lo.ah_threshold_scale > 0.74,
            "{lo:?}"
        );
        assert!(
            hi.if_threshold_scale > 1.10 && hi.if_threshold_scale < 1.26,
            "{hi:?}"
        );
    }

    #[test]
    fn sizing_sweep_reduces_sensitivity_monotonically() {
        let rows = sizing_threshold_sweep(&[1.0, 8.0, 32.0], &[0.8]).unwrap();
        let changes: Vec<f64> = rows.iter().map(|r| r.change_percent.abs()).collect();
        assert!(changes[1] < changes[0], "{changes:?}");
        assert!(changes[2] < changes[1], "{changes:?}");
        // Paper: −18% stock → −5.23% at 32:1; our EKV model pins less
        // aggressively (see EXPERIMENTS.md) but must stay below 16%.
        assert!(changes[2] < 16.0, "{changes:?}");
    }
}
