//! Behavioural bandgap voltage reference.
//!
//! The paper's bandgap-based defenses cite Sanborn et al. \[24\]: a sub-1 V
//! reference whose output varies by ±0.56% while the supply moves over the
//! attack range. The paper itself uses only that figure (it does not
//! simulate the bandgap netlist), so we model the reference behaviourally:
//! a nominal output with a small residual supply sensitivity, plus the
//! area/power bookkeeping needed for the overhead tables.

/// Behavioural model of a supply-insensitive voltage reference.
///
/// ```
/// use neurofi_analog::BandgapReference;
/// let bg = BandgapReference::new(0.5);
/// let lo = bg.output(0.8);
/// let hi = bg.output(1.2);
/// assert!((lo - 0.5).abs() / 0.5 <= 0.0056 + 1e-12);
/// assert!((hi - 0.5).abs() / 0.5 <= 0.0056 + 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BandgapReference {
    /// Nominal output voltage at VDD = `vdd_nominal`, volts.
    pub v_nominal: f64,
    /// Supply voltage at which the output equals `v_nominal`, volts.
    pub vdd_nominal: f64,
    /// Maximum relative output deviation at the edges of the supported
    /// supply range (±0.56% in the cited design → `0.0056`).
    pub max_relative_deviation: f64,
    /// Half-width of the supply range over which `max_relative_deviation`
    /// is reached, volts (0.2 V: the paper sweeps VDD ∈ [0.8, 1.2]).
    pub vdd_half_range: f64,
}

impl BandgapReference {
    /// Creates the reference used by the paper's defenses: ±0.56% deviation
    /// across VDD ∈ [0.8, 1.2] around a 1.0 V nominal supply.
    ///
    /// # Panics
    /// Panics if `v_nominal` is not positive and finite.
    pub fn new(v_nominal: f64) -> BandgapReference {
        assert!(
            v_nominal.is_finite() && v_nominal > 0.0,
            "nominal reference voltage must be positive, got {v_nominal}"
        );
        BandgapReference {
            v_nominal,
            vdd_nominal: 1.0,
            max_relative_deviation: 0.0056,
            vdd_half_range: 0.2,
        }
    }

    /// Reference output at the given supply voltage, volts.
    ///
    /// The residual supply sensitivity is linear in VDD and saturates at
    /// `max_relative_deviation` outside the characterised range (a real
    /// bandgap eventually drops out, but the attack range never leaves the
    /// characterised region).
    pub fn output(&self, vdd: f64) -> f64 {
        let x = ((vdd - self.vdd_nominal) / self.vdd_half_range).clamp(-1.0, 1.0);
        self.v_nominal * (1.0 + self.max_relative_deviation * x)
    }

    /// Worst-case relative output change over `[vdd_lo, vdd_hi]`.
    pub fn worst_case_relative_deviation(&self, vdd_lo: f64, vdd_hi: f64) -> f64 {
        let lo = (self.output(vdd_lo) - self.v_nominal).abs() / self.v_nominal;
        let hi = (self.output(vdd_hi) - self.v_nominal).abs() / self.v_nominal;
        lo.max(hi)
    }
}

impl Default for BandgapReference {
    /// The 0.5 V threshold reference used by both neuron defenses.
    fn default() -> BandgapReference {
        BandgapReference::new(0.5)
    }
}

/// Area/power bookkeeping for the bandgap defense, used by the overhead
/// report (paper §V-B: 65% area overhead for a 200-neuron SNN, amortised
/// when the reference is shared).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandgapOverhead {
    /// Area of one bandgap instance, in units of one neuron's area.
    /// The paper's 65% overhead for 200 neurons ⇒ one bandgap ≈ 130
    /// neuron-equivalents.
    pub area_neuron_equivalents: f64,
    /// Static power of the reference, watts.
    pub static_power: f64,
}

impl Default for BandgapOverhead {
    fn default() -> BandgapOverhead {
        BandgapOverhead {
            area_neuron_equivalents: 130.0,
            static_power: 1.0e-6,
        }
    }
}

impl BandgapOverhead {
    /// Relative area overhead of adding one shared bandgap to an SNN with
    /// `neuron_count` neurons.
    ///
    /// # Panics
    /// Panics if `neuron_count` is zero.
    pub fn area_overhead(&self, neuron_count: usize) -> f64 {
        assert!(neuron_count > 0, "neuron_count must be positive");
        self.area_neuron_equivalents / neuron_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_at_nominal_vdd() {
        let bg = BandgapReference::new(0.5);
        assert!((bg.output(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deviation_bounded_at_extremes() {
        let bg = BandgapReference::new(0.5);
        assert!(bg.worst_case_relative_deviation(0.8, 1.2) <= 0.0056 + 1e-12);
    }

    #[test]
    fn deviation_saturates_outside_range() {
        let bg = BandgapReference::new(0.5);
        assert_eq!(bg.output(0.5), bg.output(0.8));
        assert_eq!(bg.output(2.0), bg.output(1.2));
    }

    #[test]
    fn monotone_in_vdd_within_range() {
        let bg = BandgapReference::new(0.5);
        assert!(bg.output(0.9) < bg.output(1.1));
    }

    #[test]
    fn paper_area_overhead_for_200_neurons() {
        let oh = BandgapOverhead::default();
        let overhead = oh.area_overhead(200);
        assert!((overhead - 0.65).abs() < 1e-9);
        // Amortises with scale, as the paper argues.
        assert!(oh.area_overhead(20_000) < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_nominal() {
        BandgapReference::new(-1.0);
    }
}
