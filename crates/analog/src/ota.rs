//! Standalone five-transistor OTA (operational transconductance
//! amplifier) — the comparator topology inside the voltage-amplifier I&F
//! neuron (Fig. 2b) and the Fig. 10a Axon Hillock defense.
//!
//! Exposed as its own block with DC characterisation (switching point,
//! input-referred offset, small-signal gain, output swing) so circuit
//! explorations can size the comparator independently of a full neuron.

use neurofi_spice::device::MosModel;
use neurofi_spice::error::Result;
use neurofi_spice::units::MICRO;
use neurofi_spice::waveform::Waveform;
use neurofi_spice::{Netlist, NodeId, SolveOptions};

/// A five-transistor OTA: NMOS differential pair, PMOS mirror load,
/// bias-voltage-controlled tail current.
#[derive(Debug, Clone, PartialEq)]
pub struct FiveTransistorOta {
    /// Differential-pair device width, meters.
    pub w_pair: f64,
    /// Mirror-load device width, meters.
    pub w_mirror: f64,
    /// Tail device width, meters.
    pub w_tail: f64,
    /// Channel length, meters.
    pub l: f64,
    /// Tail bias voltage, volts.
    pub v_bias: f64,
    /// NMOS model card.
    pub nmos: MosModel,
    /// PMOS model card.
    pub pmos: MosModel,
}

impl Default for FiveTransistorOta {
    fn default() -> FiveTransistorOta {
        FiveTransistorOta {
            w_pair: 1.0 * MICRO,
            w_mirror: 2.0 * MICRO,
            w_tail: 2.0 * MICRO,
            l: 65.0e-9,
            v_bias: 0.4,
            nmos: MosModel::ptm65_nmos(),
            pmos: MosModel::ptm65_pmos(),
        }
    }
}

/// Node handles returned by [`FiveTransistorOta::build`].
#[derive(Debug, Clone, Copy)]
pub struct OtaNodes {
    /// Supply rail.
    pub vdd: NodeId,
    /// Non-inverting input (the output rises when `inp > inn`).
    pub inp: NodeId,
    /// Inverting input.
    pub inn: NodeId,
    /// Output.
    pub out: NodeId,
}

/// DC characterisation results from [`FiveTransistorOta::characterize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OtaCharacterization {
    /// Supply voltage of the characterisation.
    pub vdd: f64,
    /// Common-mode reference applied to the inverting input, volts.
    pub v_ref: f64,
    /// Input voltage at which the output crosses `vdd/2`, volts.
    pub switching_point: f64,
    /// Input-referred offset: `switching_point − v_ref`, volts.
    pub offset: f64,
    /// Small-signal DC gain magnitude around the switching point.
    pub gain: f64,
    /// Output low level (input far below the reference), volts.
    pub out_low: f64,
    /// Output high level (input far above the reference), volts.
    pub out_high: f64,
}

impl FiveTransistorOta {
    /// Adds the OTA to `net` with namespaced element names.
    ///
    /// # Errors
    /// Propagates netlist construction errors.
    pub fn build(&self, net: &mut Netlist, prefix: &str) -> Result<OtaNodes> {
        let gnd = Netlist::GROUND;
        let vdd = net.node(&format!("{prefix}_vdd"));
        let inp = net.node(&format!("{prefix}_inp"));
        let inn = net.node(&format!("{prefix}_inn"));
        let out = net.node(&format!("{prefix}_out"));
        let tail = net.node(&format!("{prefix}_tail"));
        let n1 = net.node(&format!("{prefix}_n1"));
        let vb = net.node(&format!("{prefix}_vb"));

        net.vsource(&format!("{prefix}_VB"), vb, gnd, Waveform::Dc(self.v_bias))?;
        net.mosfet(
            &format!("{prefix}_MNT"),
            tail,
            vb,
            gnd,
            gnd,
            self.nmos.clone(),
            self.w_tail,
            self.l,
        )?;
        // inp drives the mirror side so the output swings up with inp.
        net.mosfet(
            &format!("{prefix}_MIP"),
            n1,
            inp,
            tail,
            gnd,
            self.nmos.clone(),
            self.w_pair,
            self.l,
        )?;
        net.mosfet(
            &format!("{prefix}_MIN"),
            out,
            inn,
            tail,
            gnd,
            self.nmos.clone(),
            self.w_pair,
            self.l,
        )?;
        net.mosfet(
            &format!("{prefix}_MPA"),
            n1,
            n1,
            vdd,
            vdd,
            self.pmos.clone(),
            self.w_mirror,
            self.l,
        )?;
        net.mosfet(
            &format!("{prefix}_MPB"),
            out,
            n1,
            vdd,
            vdd,
            self.pmos.clone(),
            self.w_mirror,
            self.l,
        )?;
        Ok(OtaNodes { vdd, inp, inn, out })
    }

    /// DC-characterises the OTA as a comparator against a reference
    /// voltage on the inverting input.
    ///
    /// # Errors
    /// Propagates solver failures, or
    /// [`neurofi_spice::Error::InvalidAnalysis`] if the output never
    /// crosses `vdd/2` over the sweep (e.g. the bias leaves no headroom).
    pub fn characterize(&self, vdd: f64, v_ref: f64) -> Result<OtaCharacterization> {
        let mut net = Netlist::new();
        let nodes = self.build(&mut net, "ota")?;
        net.vsource("VDD", nodes.vdd, Netlist::GROUND, Waveform::Dc(vdd))?;
        net.vsource("VREF", nodes.inn, Netlist::GROUND, Waveform::Dc(v_ref))?;
        net.vsource("VIN", nodes.inp, Netlist::GROUND, Waveform::Dc(0.0))?;
        let circuit = net.compile()?;
        let n = 400;
        let values: Vec<f64> = (0..=n).map(|i| vdd * i as f64 / n as f64).collect();
        let ops = circuit.dc_sweep("VIN", &values, &SolveOptions::default())?;
        let outs: Vec<f64> = ops.iter().map(|op| op.voltage(nodes.out)).collect();
        let level = 0.5 * vdd;
        let mut switching_point = None;
        let mut gain: f64 = 0.0;
        for i in 1..outs.len() {
            let slope = (outs[i] - outs[i - 1]) / (values[i] - values[i - 1]);
            gain = gain.max(slope.abs());
            if switching_point.is_none() && outs[i - 1] < level && outs[i] >= level {
                let frac = (level - outs[i - 1]) / (outs[i] - outs[i - 1]);
                switching_point = Some(values[i - 1] + frac * (values[i] - values[i - 1]));
            }
        }
        let switching_point = switching_point.ok_or_else(|| {
            neurofi_spice::Error::InvalidAnalysis(format!(
                "ota output never crossed vdd/2 at vdd={vdd}, vref={v_ref}"
            ))
        })?;
        Ok(OtaCharacterization {
            vdd,
            v_ref,
            switching_point,
            offset: switching_point - v_ref,
            gain,
            out_low: outs[0],
            out_high: *outs.last().unwrap(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switches_near_the_reference() {
        let ota = FiveTransistorOta::default();
        let c = ota.characterize(1.0, 0.5).unwrap();
        assert!(
            c.offset.abs() < 0.08,
            "offset {:.3} V too large (switching at {:.3})",
            c.offset,
            c.switching_point
        );
    }

    #[test]
    fn output_swings_most_of_the_rail() {
        let c = FiveTransistorOta::default().characterize(1.0, 0.5).unwrap();
        assert!(c.out_low < 0.3, "low level {:.3}", c.out_low);
        assert!(c.out_high > 0.8, "high level {:.3}", c.out_high);
    }

    #[test]
    fn gain_is_comparator_grade() {
        let c = FiveTransistorOta::default().characterize(1.0, 0.5).unwrap();
        assert!(c.gain > 5.0, "gain {:.1} too low for a comparator", c.gain);
    }

    #[test]
    fn switching_point_tracks_reference_not_vdd() {
        // The property the Fig. 10a defense relies on: with a fixed
        // reference, the switching point barely moves across the attack
        // VDD range.
        let ota = FiveTransistorOta::default();
        let at_nominal = ota.characterize(1.0, 0.5).unwrap();
        let at_sag = ota.characterize(0.85, 0.5).unwrap();
        let shift = (at_sag.switching_point - at_nominal.switching_point).abs();
        assert!(shift < 0.04, "switching point moved {shift:.3} V with VDD");
    }

    #[test]
    fn reference_sweep_moves_switching_point() {
        let ota = FiveTransistorOta::default();
        let lo = ota.characterize(1.0, 0.42).unwrap();
        let hi = ota.characterize(1.0, 0.58).unwrap();
        assert!(hi.switching_point > lo.switching_point + 0.1);
    }
}
