//! VDD → behavioural-parameter transfer tables.
//!
//! The bridge between the circuit level and the network level: the paper
//! translates its HSPICE characterisation (Figs. 5b/6a) into BindsNET
//! parameter changes. [`PowerTransferTable`] plays that role here — it maps
//! a supply voltage to the relative change in input-drive strength and in
//! the membrane thresholds of both neuron flavors, and is consumed by the
//! attack models in `neurofi-core`.

/// Relative circuit parameters at one supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferPoint {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Input-drive (spike-amplitude) scale relative to nominal (1.0 at
    /// VDD = 1 V).
    pub drive_scale: f64,
    /// Axon Hillock membrane-threshold scale relative to nominal.
    pub ah_threshold_scale: f64,
    /// Voltage-amplifier I&F threshold scale relative to nominal.
    pub if_threshold_scale: f64,
}

/// Piecewise-linear VDD → parameter map.
///
/// Construct from measurements ([`PowerTransferTable::from_measurements`])
/// or from the paper's reported endpoints
/// ([`PowerTransferTable::paper_nominal`]):
///
/// ```
/// use neurofi_analog::PowerTransferTable;
/// let table = PowerTransferTable::paper_nominal();
/// let p = table.sample(0.8);
/// assert!((p.drive_scale - 0.68).abs() < 1e-9);          // −32% (Fig. 5b)
/// assert!((p.ah_threshold_scale - 0.8209).abs() < 1e-3); // −17.91% (Fig. 6a)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTransferTable {
    points: Vec<TransferPoint>,
}

impl PowerTransferTable {
    /// Builds a table from explicit points.
    ///
    /// # Panics
    /// Panics if fewer than two points are given or the VDD values are not
    /// strictly increasing.
    pub fn new(points: Vec<TransferPoint>) -> PowerTransferTable {
        assert!(points.len() >= 2, "need at least two transfer points");
        assert!(
            points.windows(2).all(|w| w[0].vdd < w[1].vdd),
            "transfer points must have strictly increasing vdd"
        );
        PowerTransferTable { points }
    }

    /// The paper's reported characterisation (Figs. 5b and 6a), linearly
    /// interpolated between the stated endpoints.
    pub fn paper_nominal() -> PowerTransferTable {
        // Fig. 5b: 136 nA at 0.8 V, 200 nA at 1.0 V, 264 nA at 1.2 V.
        // Fig. 6a: AH −17.91%..+16.76%; VAIF −18.01%..+17.14%.
        PowerTransferTable::new(vec![
            TransferPoint {
                vdd: 0.8,
                drive_scale: 0.68,
                ah_threshold_scale: 1.0 - 0.1791,
                if_threshold_scale: 1.0 - 0.1801,
            },
            TransferPoint {
                vdd: 1.0,
                drive_scale: 1.0,
                ah_threshold_scale: 1.0,
                if_threshold_scale: 1.0,
            },
            TransferPoint {
                vdd: 1.2,
                drive_scale: 1.32,
                ah_threshold_scale: 1.0 + 0.1676,
                if_threshold_scale: 1.0 + 0.1714,
            },
        ])
    }

    /// Builds a table from raw `(vdd, value)` measurement series, each
    /// normalised by its value at the reference supply `vdd_ref`.
    ///
    /// All three series must be sampled at the same, strictly increasing
    /// VDD grid and must contain `vdd_ref`.
    ///
    /// # Panics
    /// Panics if the grids disagree, are shorter than two points, or miss
    /// `vdd_ref`.
    pub fn from_measurements(
        vdd_ref: f64,
        driver_amplitude: &[(f64, f64)],
        ah_threshold: &[(f64, f64)],
        if_threshold: &[(f64, f64)],
    ) -> PowerTransferTable {
        assert_eq!(
            driver_amplitude.len(),
            ah_threshold.len(),
            "measurement grids must match"
        );
        assert_eq!(
            driver_amplitude.len(),
            if_threshold.len(),
            "measurement grids must match"
        );
        let find_ref = |series: &[(f64, f64)]| -> f64 {
            series
                .iter()
                .find(|(v, _)| (v - vdd_ref).abs() < 1e-9)
                .unwrap_or_else(|| panic!("series does not contain vdd_ref={vdd_ref}"))
                .1
        };
        let drive_ref = find_ref(driver_amplitude);
        let ah_ref = find_ref(ah_threshold);
        let if_ref = find_ref(if_threshold);
        let points = driver_amplitude
            .iter()
            .zip(ah_threshold)
            .zip(if_threshold)
            .map(|(((vd, drive), (va, ah)), (vi, ifv))| {
                assert!(
                    (vd - va).abs() < 1e-9 && (vd - vi).abs() < 1e-9,
                    "measurement grids must use identical vdd values"
                );
                TransferPoint {
                    vdd: *vd,
                    drive_scale: drive / drive_ref,
                    ah_threshold_scale: ah / ah_ref,
                    if_threshold_scale: ifv / if_ref,
                }
            })
            .collect();
        PowerTransferTable::new(points)
    }

    /// The underlying points.
    pub fn points(&self) -> &[TransferPoint] {
        &self.points
    }

    /// Samples the table at `vdd` with linear interpolation, clamping to
    /// the characterised range.
    pub fn sample(&self, vdd: f64) -> TransferPoint {
        let first = self.points.first().unwrap();
        let last = self.points.last().unwrap();
        if vdd <= first.vdd {
            return TransferPoint { vdd, ..*first };
        }
        if vdd >= last.vdd {
            return TransferPoint { vdd, ..*last };
        }
        for pair in self.points.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if vdd <= b.vdd {
                let t = (vdd - a.vdd) / (b.vdd - a.vdd);
                let lerp = |x: f64, y: f64| x + t * (y - x);
                return TransferPoint {
                    vdd,
                    drive_scale: lerp(a.drive_scale, b.drive_scale),
                    ah_threshold_scale: lerp(a.ah_threshold_scale, b.ah_threshold_scale),
                    if_threshold_scale: lerp(a.if_threshold_scale, b.if_threshold_scale),
                };
            }
        }
        unreachable!("vdd within range must hit an interval");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_nominal_endpoints() {
        let t = PowerTransferTable::paper_nominal();
        let lo = t.sample(0.8);
        let hi = t.sample(1.2);
        assert!((lo.drive_scale - 0.68).abs() < 1e-12);
        assert!((hi.drive_scale - 1.32).abs() < 1e-12);
        assert!((lo.if_threshold_scale - 0.8199).abs() < 1e-9);
        assert!((hi.ah_threshold_scale - 1.1676).abs() < 1e-9);
    }

    #[test]
    fn nominal_point_is_identity() {
        let p = PowerTransferTable::paper_nominal().sample(1.0);
        assert_eq!(p.drive_scale, 1.0);
        assert_eq!(p.ah_threshold_scale, 1.0);
        assert_eq!(p.if_threshold_scale, 1.0);
    }

    #[test]
    fn interpolation_is_linear() {
        let t = PowerTransferTable::paper_nominal();
        let p = t.sample(0.9);
        assert!((p.drive_scale - 0.84).abs() < 1e-12);
    }

    #[test]
    fn clamps_outside_range() {
        let t = PowerTransferTable::paper_nominal();
        assert_eq!(t.sample(0.5).drive_scale, t.sample(0.8).drive_scale);
        assert_eq!(t.sample(2.0).drive_scale, t.sample(1.2).drive_scale);
    }

    #[test]
    fn from_measurements_normalises() {
        let vdds = [0.8, 1.0, 1.2];
        let drive: Vec<(f64, f64)> = vdds.iter().map(|&v| (v, 200.0e-9 * v)).collect();
        let ah: Vec<(f64, f64)> = vdds.iter().map(|&v| (v, 0.5 * v)).collect();
        let ifv: Vec<(f64, f64)> = vdds.iter().map(|&v| (v, 0.5 * v)).collect();
        let t = PowerTransferTable::from_measurements(1.0, &drive, &ah, &ifv);
        let p = t.sample(0.8);
        assert!((p.drive_scale - 0.8).abs() < 1e-12);
        assert!((p.ah_threshold_scale - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted() {
        let p = PowerTransferTable::paper_nominal().points()[0];
        PowerTransferTable::new(vec![p, p]);
    }

    #[test]
    #[should_panic(expected = "vdd_ref")]
    fn rejects_missing_reference() {
        let series = [(0.8, 1.0), (1.2, 2.0)];
        PowerTransferTable::from_measurements(1.0, &series, &series, &series);
    }
}
