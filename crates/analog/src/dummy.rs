//! Dummy-neuron cell for voltage-fault-injection detection (paper
//! Figs. 10b/10c).
//!
//! A dummy neuron is a copy of the layer's neuron driven by a *fixed*
//! input spike train (200 nA, 100 ns wide, every 200 ns) that does not
//! depend on upstream activity. Under nominal conditions its output spike
//! count over a sampling window is constant; a local VDD glitch shifts the
//! count by ≥10%, which the detector in `neurofi-core` flags.
//!
//! Paper-scale note: the paper samples over 100 ms. Simulating 100 ms of a
//! transistor-level netlist at nanosecond resolution is ~10⁸ steps, so we
//! measure the *steady-state spike rate* over a few firing periods and
//! extrapolate the count (`count = rate × window`). The detection rule
//! compares relative counts, which is identical under this substitution.

use neurofi_spice::error::Result;
use neurofi_spice::units::NANO;

use crate::axon_hillock::{AxonHillock, InputSpec};
use crate::vamp_if::VoltageAmplifierIf;
use crate::NeuronKind;

/// A dummy-neuron detector cell.
#[derive(Debug, Clone)]
pub struct DummyNeuron {
    /// Which neuron flavor this dummy replicates.
    pub kind: NeuronKind,
    /// Axon Hillock configuration (used when `kind` is `AxonHillock`).
    pub axon_hillock: AxonHillock,
    /// VAIF configuration (used when `kind` is `VoltageAmplifierIf`).
    pub vamp_if: VoltageAmplifierIf,
    /// The fixed stimulus: 200 nA spikes, 100 ns wide, repeating every
    /// 200 ns (paper §V-C).
    pub input: InputSpec,
}

impl DummyNeuron {
    /// Creates the paper's dummy cell for the given neuron flavor.
    pub fn new(kind: NeuronKind) -> DummyNeuron {
        DummyNeuron {
            kind,
            axon_hillock: AxonHillock::default(),
            vamp_if: VoltageAmplifierIf::default(),
            input: InputSpec {
                amplitude: 200.0 * NANO,
                width: 100.0 * NANO,
                period: 200.0 * NANO,
            },
        }
    }

    /// Steady-state output spike rate at the given supply voltage, hertz.
    ///
    /// # Errors
    /// Propagates solver failures.
    pub fn spike_rate(&self, vdd: f64) -> Result<f64> {
        let period = match self.kind {
            NeuronKind::AxonHillock => self.axon_hillock.spike_period(vdd, &self.input)?,
            NeuronKind::VoltageAmplifierIf => self.vamp_if.spike_period(vdd, &self.input)?,
        };
        Ok(1.0 / period)
    }

    /// Expected output spike count over a sampling window (the paper uses
    /// 100 ms), extrapolated from the steady-state rate.
    ///
    /// # Errors
    /// Propagates solver failures.
    pub fn expected_spike_count(&self, vdd: f64, window: f64) -> Result<f64> {
        Ok(self.spike_rate(vdd)? * window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_input_is_the_paper_spec() {
        let dummy = DummyNeuron::new(NeuronKind::AxonHillock);
        assert!((dummy.input.amplitude - 200.0e-9).abs() < 1e-15);
        assert!((dummy.input.width - 100.0e-9).abs() < 1e-15);
        assert!((dummy.input.period - 200.0e-9).abs() < 1e-15);
    }

    #[test]
    fn ah_dummy_rate_shifts_with_vdd() {
        let dummy = DummyNeuron::new(NeuronKind::AxonHillock);
        let nominal = dummy.spike_rate(1.0).unwrap();
        let low = dummy.spike_rate(0.8).unwrap();
        // Lower VDD lowers the threshold → the dummy fires faster; the
        // paper's detector needs ≥10% count deviation at a 0.2 V glitch.
        let pct = (low - nominal) / nominal * 100.0;
        assert!(
            pct.abs() > 10.0,
            "rate change {pct:.1}% too small to detect"
        );
    }

    #[test]
    fn count_scales_linearly_with_window() {
        let dummy = DummyNeuron::new(NeuronKind::AxonHillock);
        let c1 = dummy.expected_spike_count(1.0, 0.1).unwrap();
        let c2 = dummy.expected_spike_count(1.0, 0.2).unwrap();
        assert!((c2 / c1 - 2.0).abs() < 1e-9);
        // 100 ms window gives thousands of spikes, as in Fig. 10c.
        assert!(c1 > 1.0e3, "count {c1}");
    }
}
