//! # neurofi-analog
//!
//! Transistor-level implementations of the analog building blocks studied in
//! *"Analysis of Power-Oriented Fault Injection Attacks on Spiking Neural
//! Networks"* (DATE 2022), built on the [`neurofi_spice`] simulator:
//!
//! * [`axon_hillock`] — the Axon Hillock neuron (paper Fig. 2a): membrane
//!   capacitor, two-inverter amplifier with capacitive positive feedback,
//!   bias-limited reset path.
//! * [`vamp_if`] — the voltage-amplifier I&F neuron (Fig. 2b): 5-transistor
//!   OTA comparator, resistor-divider threshold (the VDD-coupled
//!   vulnerability), explicit spike and refractory machinery around a 20 pF
//!   capacitor.
//! * [`driver`] — the current-mirror input driver (Fig. 5a) whose output
//!   amplitude tracks VDD (the attack surface), and the robust op-amp
//!   driver (Fig. 9b) that pins the amplitude to a bandgap reference.
//! * [`bandgap`] — behavioural bandgap voltage reference (±0.56% over the
//!   attack VDD range, after ref.\[24\] in the paper).
//! * [`dummy`] — the dummy-neuron voltage-glitch detector cell
//!   (Figs. 10b/10c).
//! * [`characterize`] — sweep drivers that regenerate the paper's
//!   circuit-level figures (5b, 5c, 6a, 6b, 6c, 9c, 10c) and measure the
//!   power overheads of the defenses.
//!
//! The characterisation results feed the behavioural attack models in
//! `neurofi-core` through [`transfer::PowerTransferTable`].
//!
//! ## Example: measure the driver's VDD sensitivity (paper Fig. 5b)
//!
//! ```
//! use neurofi_analog::driver::CurrentDriver;
//!
//! let driver = CurrentDriver::default();
//! let nominal = driver.output_amplitude(1.0)?;
//! let sagged = driver.output_amplitude(0.8)?;
//! // The paper reports 200 nA at VDD = 1.0 V and 136 nA at 0.8 V (−32%).
//! assert!((nominal - 200.0e-9).abs() < 20.0e-9);
//! assert!(sagged < 0.75 * nominal);
//! # Ok::<(), neurofi_analog::Error>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod axon_hillock;
pub mod bandgap;
pub mod characterize;
pub mod driver;
pub mod dummy;
pub mod layer;
pub mod ota;
pub mod transfer;
pub mod vamp_if;

pub use axon_hillock::AxonHillock;
pub use bandgap::BandgapReference;
pub use driver::{CurrentDriver, RobustCurrentDriver};
pub use dummy::DummyNeuron;
pub use layer::{LayerNetlist, LayerResponse};
/// Errors from this crate are simulator errors; re-exported for `?`-chains.
pub use neurofi_spice::{Engine, Error};
pub use transfer::{PowerTransferTable, TransferPoint};
pub use vamp_if::VoltageAmplifierIf;

/// Which of the paper's two neuron designs a characterisation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeuronKind {
    /// The Axon Hillock neuron (Fig. 2a).
    AxonHillock,
    /// The voltage-amplifier I&F neuron (Fig. 2b).
    VoltageAmplifierIf,
}

impl std::fmt::Display for NeuronKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NeuronKind::AxonHillock => write!(f, "axon-hillock"),
            NeuronKind::VoltageAmplifierIf => write!(f, "voltage-amplifier-if"),
        }
    }
}

/// Waveforms captured from a neuron transient simulation.
#[derive(Debug, Clone)]
pub struct NeuronWaveforms {
    /// Time points, seconds.
    pub times: Vec<f64>,
    /// Membrane voltage, volts.
    pub vmem: Vec<f64>,
    /// Output voltage, volts.
    pub vout: Vec<f64>,
    /// Current drawn from the VDD supply, amperes (positive = consumption).
    pub supply_current: Vec<f64>,
    /// Supply voltage used for the run, volts.
    pub vdd: f64,
}

impl NeuronWaveforms {
    /// Times of output spikes (rising crossings of `vdd/2` on `vout`).
    pub fn output_spike_times(&self) -> Vec<f64> {
        neurofi_spice::measure::spike_times(&self.times, &self.vout, 0.5 * self.vdd)
    }

    /// Mean inter-spike period of the output, if at least two spikes fired.
    pub fn mean_output_period(&self) -> Option<f64> {
        neurofi_spice::measure::mean_spike_period(&self.times, &self.vout, 0.5 * self.vdd)
    }

    /// Average power drawn from VDD over the simulated window, watts.
    pub fn average_supply_power(&self) -> f64 {
        let t0 = *self.times.first().unwrap_or(&0.0);
        let t1 = *self.times.last().unwrap_or(&0.0);
        neurofi_spice::measure::average_in(&self.times, &self.supply_current, t0, t1).unwrap_or(0.0)
            * self.vdd
    }
}
