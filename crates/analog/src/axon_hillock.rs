//! The Axon Hillock spiking neuron (paper Fig. 2a, after Mead).
//!
//! Input current integrates on `Cmem`; when the membrane voltage crosses
//! the first inverter's switching threshold the two-inverter amplifier
//! flips, the output step couples back through `Cfb` (regenerative kick),
//! and the reset pair `MN1`/`MN2` discharges the membrane at a rate set by
//! the `Vpw` bias until the cycle repeats.
//!
//! The *membrane threshold* of this neuron is the first inverter's
//! switching voltage — set by VDD and the inverter's N:P strength ratio —
//! which is exactly the asset the paper's power attacks corrupt (Fig. 6a)
//! and its sizing defense protects (Fig. 9c).

use neurofi_spice::device::MosModel;
use neurofi_spice::error::Result;
use neurofi_spice::units::{MICRO, NANO, PICO};
use neurofi_spice::waveform::Waveform;
use neurofi_spice::{Netlist, NodeId, SolveOptions, TranSpec};

use crate::bandgap::BandgapReference;
use crate::NeuronWaveforms;

/// Input spike-train specification for neuron test benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputSpec {
    /// Spike amplitude, amperes.
    pub amplitude: f64,
    /// Spike width, seconds.
    pub width: f64,
    /// Spike period, seconds.
    pub period: f64,
}

impl InputSpec {
    /// The paper's Axon Hillock stimulus: 200 nA spikes at a 40 MHz rate.
    ///
    /// The paper states a 25 ns width *and* a 25 ns period, which is a
    /// continuous current; we use a 50% duty cycle (12.5 ns wide) so the
    /// input remains a spike train, preserving the 40 MHz rate. All of the
    /// paper's *relative* timing results are duty-cycle-invariant.
    pub fn paper_axon_hillock() -> InputSpec {
        InputSpec {
            amplitude: 200.0 * NANO,
            width: 12.5 * NANO,
            period: 25.0 * NANO,
        }
    }

    /// The paper's voltage-amplifier I&F stimulus: 200 nA spikes, 25 ns
    /// wide, 25 ns apart (20 MHz, 50% duty).
    pub fn paper_vamp_if() -> InputSpec {
        InputSpec {
            amplitude: 200.0 * NANO,
            width: 25.0 * NANO,
            period: 50.0 * NANO,
        }
    }

    /// Returns a copy with a different amplitude (the Fig. 5c sweep).
    #[must_use]
    pub fn with_amplitude(mut self, amplitude: f64) -> InputSpec {
        self.amplitude = amplitude;
        self
    }

    /// The equivalent DC (time-averaged) current, amperes.
    pub fn average_current(&self) -> f64 {
        self.amplitude * self.width / self.period
    }

    /// Builds the current-source waveform.
    pub fn waveform(&self) -> Waveform {
        Waveform::spike_train(self.amplitude, self.width, self.period, 0.0)
    }
}

/// First amplification stage of the Axon Hillock neuron.
#[derive(Debug, Clone, PartialEq)]
pub enum FirstStage {
    /// The stock CMOS inverter (vulnerable: its switching threshold tracks
    /// VDD).
    Inverter,
    /// The Fig. 10a defense: a 5-transistor comparator referenced to a
    /// bandgap voltage, making the threshold VDD-independent.
    Comparator {
        /// Threshold reference (nominally 0.5 V from a bandgap).
        reference: BandgapReference,
        /// Tail-current bias voltage VB, volts (0.4 V in the paper).
        v_bias: f64,
    },
}

/// The Axon Hillock neuron circuit.
///
/// [`Default`] reproduces the paper's design: `Cmem = Cfb = 1 pF`,
/// VDD = 1 V operation, first-inverter sizing that places the membrane
/// threshold at ≈0.5 V.
#[derive(Debug, Clone, PartialEq)]
pub struct AxonHillock {
    /// Membrane capacitance, farads (1 pF).
    pub c_mem: f64,
    /// Feedback capacitance, farads (1 pF).
    pub c_fb: f64,
    /// Reset-current bias `Vpw`, volts. Sets the discharge rate through
    /// MN2; must give a reset current well above the input current.
    pub v_pw: f64,
    /// First-inverter NMOS width, meters. The sizing-defense knob: scaling
    /// this up pins the switching threshold toward the (VDD-independent)
    /// NMOS `Vt0` (paper Fig. 9c).
    pub inv1_wn: f64,
    /// First-inverter PMOS width, meters.
    pub inv1_wp: f64,
    /// Second-inverter NMOS width, meters.
    pub inv2_wn: f64,
    /// Second-inverter PMOS width, meters.
    pub inv2_wp: f64,
    /// Reset switch MN1 width, meters.
    pub w_reset: f64,
    /// Reset current limiter MN2 width, meters.
    pub w_limit: f64,
    /// Channel length used throughout, meters.
    pub l: f64,
    /// First stage: inverter (stock) or comparator (defense).
    pub first_stage: FirstStage,
    /// NMOS model card.
    pub nmos: MosModel,
    /// PMOS model card.
    pub pmos: MosModel,
}

impl Default for AxonHillock {
    fn default() -> AxonHillock {
        AxonHillock {
            c_mem: 1.0 * PICO,
            c_fb: 1.0 * PICO,
            v_pw: 0.45,
            inv1_wn: 1.0 * MICRO,
            inv1_wp: 1.0 * MICRO,
            inv2_wn: 1.0 * MICRO,
            inv2_wp: 2.5 * MICRO,
            w_reset: 2.0 * MICRO,
            w_limit: 1.0 * MICRO,
            l: 65.0 * NANO,
            first_stage: FirstStage::Inverter,
            nmos: MosModel::ptm65_nmos(),
            pmos: MosModel::ptm65_pmos(),
        }
    }
}

/// Node handles returned by [`AxonHillock::build`].
#[derive(Debug, Clone, Copy)]
pub struct AxonHillockNodes {
    /// Supply node.
    pub vdd: NodeId,
    /// Membrane node (`Vmem`).
    pub mem: NodeId,
    /// Output node (`Vout`).
    pub out: NodeId,
}

impl AxonHillock {
    /// Returns a copy with the first-inverter N:P width ratio set to
    /// `ratio` (PMOS width fixed, NMOS width scaled) — the Fig. 9c sizing
    /// sweep.
    ///
    /// # Panics
    /// Panics if `ratio` is not positive and finite.
    #[must_use]
    pub fn with_first_inverter_ratio(mut self, ratio: f64) -> AxonHillock {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "sizing ratio must be positive, got {ratio}"
        );
        self.inv1_wn = self.inv1_wp * ratio;
        self
    }

    /// Returns a copy using the comparator first stage (Fig. 10a defense).
    #[must_use]
    pub fn with_comparator_stage(mut self) -> AxonHillock {
        self.first_stage = FirstStage::Comparator {
            reference: BandgapReference::new(0.5),
            v_bias: 0.4,
        };
        self
    }

    /// Adds the neuron to `net`. The membrane input current must be
    /// injected into the returned `mem` node; the supply rail `vdd` must be
    /// driven externally (that is the attack surface).
    ///
    /// # Errors
    /// Propagates netlist construction errors.
    pub fn build(
        &self,
        net: &mut Netlist,
        prefix: &str,
        vdd_value: f64,
    ) -> Result<AxonHillockNodes> {
        let vdd = net.node(&format!("{prefix}_vdd"));
        self.build_on_rails(net, prefix, vdd, None, vdd_value)
    }

    /// Adds the neuron to `net` on caller-provided rails: the supply node
    /// `vdd` (e.g. a tap of a shared parasitic rail) and optionally a
    /// shared `Vpw` bias node. With `vpw: None` the neuron creates its own
    /// bias node and source, exactly as [`AxonHillock::build`] always has;
    /// with `Some` the whole layer shares one bias source, as a real
    /// layout's bias distribution would.
    ///
    /// # Errors
    /// Propagates netlist construction errors.
    pub fn build_on_rails(
        &self,
        net: &mut Netlist,
        prefix: &str,
        vdd: NodeId,
        shared_vpw: Option<NodeId>,
        vdd_value: f64,
    ) -> Result<AxonHillockNodes> {
        let gnd = Netlist::GROUND;
        let mem = net.node(&format!("{prefix}_mem"));
        let stage1 = net.node(&format!("{prefix}_s1"));
        let out = net.node(&format!("{prefix}_out"));
        let rst = net.node(&format!("{prefix}_rst"));

        net.capacitor_ic(&format!("{prefix}_CMEM"), mem, gnd, self.c_mem, 0.0)?;
        net.capacitor_ic(&format!("{prefix}_CFB"), out, mem, self.c_fb, 0.0)?;
        // Lumped gate/junction parasitics at the amplifier nodes. Physically
        // these are the fF-scale device capacitances; numerically they give
        // the regenerative feedback loop a finite flip speed, which the
        // transient engine resolves by local step halving. Initial
        // conditions match the quiescent state (membrane at 0 ⇒ stage-1
        // output high, neuron output low).
        net.capacitor_ic(&format!("{prefix}_CP1"), stage1, gnd, 20.0e-15, vdd_value)?;
        net.capacitor_ic(&format!("{prefix}_CP2"), out, gnd, 20.0e-15, 0.0)?;

        match &self.first_stage {
            FirstStage::Inverter => {
                net.mosfet(
                    &format!("{prefix}_MP1"),
                    stage1,
                    mem,
                    vdd,
                    vdd,
                    self.pmos.clone(),
                    self.inv1_wp,
                    self.l,
                )?;
                net.mosfet(
                    &format!("{prefix}_MN3"),
                    stage1,
                    mem,
                    gnd,
                    gnd,
                    self.nmos.clone(),
                    self.inv1_wn,
                    self.l,
                )?;
            }
            FirstStage::Comparator { reference, v_bias } => {
                // 5T OTA wired inverting (in− = mem, in+ = reference) so the
                // stage-1 output falls as the membrane crosses threshold,
                // matching the inverter polarity.
                let vref = net.node(&format!("{prefix}_vref"));
                let vb = net.node(&format!("{prefix}_vb"));
                let tail = net.node(&format!("{prefix}_tail"));
                let n1 = net.node(&format!("{prefix}_n1"));
                net.vsource(
                    &format!("{prefix}_VREF"),
                    vref,
                    gnd,
                    Waveform::Dc(reference.output(vdd_value)),
                )?;
                net.vsource(&format!("{prefix}_VB"), vb, gnd, Waveform::Dc(*v_bias))?;
                net.mosfet(
                    &format!("{prefix}_MNT"),
                    tail,
                    vb,
                    gnd,
                    gnd,
                    self.nmos.clone(),
                    2.0 * MICRO,
                    self.l,
                )?;
                // in+ = vref drives the mirror side; in− = mem drives the output side.
                net.mosfet(
                    &format!("{prefix}_MIP"),
                    n1,
                    vref,
                    tail,
                    gnd,
                    self.nmos.clone(),
                    1.0 * MICRO,
                    self.l,
                )?;
                net.mosfet(
                    &format!("{prefix}_MIM"),
                    stage1,
                    mem,
                    tail,
                    gnd,
                    self.nmos.clone(),
                    1.0 * MICRO,
                    self.l,
                )?;
                net.mosfet(
                    &format!("{prefix}_MPA"),
                    n1,
                    n1,
                    vdd,
                    vdd,
                    self.pmos.clone(),
                    2.0 * MICRO,
                    self.l,
                )?;
                net.mosfet(
                    &format!("{prefix}_MPB"),
                    stage1,
                    n1,
                    vdd,
                    vdd,
                    self.pmos.clone(),
                    2.0 * MICRO,
                    self.l,
                )?;
            }
        }

        // Second inverter.
        net.mosfet(
            &format!("{prefix}_MP2"),
            out,
            stage1,
            vdd,
            vdd,
            self.pmos.clone(),
            self.inv2_wp,
            self.l,
        )?;
        net.mosfet(
            &format!("{prefix}_MN4"),
            out,
            stage1,
            gnd,
            gnd,
            self.nmos.clone(),
            self.inv2_wn,
            self.l,
        )?;

        // Reset path: mem → MN1 (gated by out) → MN2 (bias-limited) → gnd.
        // The bias node keeps its historical creation order (after `rst`)
        // so standalone builds number nodes exactly as before.
        let vpw = match shared_vpw {
            Some(node) => node,
            None => {
                let vpw = net.node(&format!("{prefix}_vpw"));
                net.vsource(&format!("{prefix}_VPW"), vpw, gnd, Waveform::Dc(self.v_pw))?;
                vpw
            }
        };
        net.mosfet(
            &format!("{prefix}_MN1"),
            mem,
            out,
            rst,
            gnd,
            self.nmos.clone(),
            self.w_reset,
            self.l,
        )?;
        net.mosfet(
            &format!("{prefix}_MN2"),
            rst,
            vpw,
            gnd,
            gnd,
            self.nmos.clone(),
            self.w_limit,
            self.l,
        )?;
        Ok(AxonHillockNodes { vdd, mem, out })
    }

    /// Transient simulation of the neuron driven by an ideal spike-train
    /// current source (the paper's Figs. 2c and 3 test bench).
    ///
    /// # Errors
    /// Propagates solver failures.
    pub fn simulate(
        &self,
        vdd: f64,
        input: &InputSpec,
        tstop: f64,
        dt: f64,
    ) -> Result<NeuronWaveforms> {
        let mut net = Netlist::new();
        let nodes = self.build(&mut net, "ah", vdd)?;
        net.vsource("VDD", nodes.vdd, Netlist::GROUND, Waveform::Dc(vdd))?;
        net.isource("IIN", Netlist::GROUND, nodes.mem, input.waveform())?;
        let spec = TranSpec::new(tstop, dt).with_uic();
        let res = net.compile()?.tran(&spec)?;
        Ok(NeuronWaveforms {
            times: res.times().to_vec(),
            vmem: res.voltage(nodes.mem),
            vout: res.voltage(nodes.out),
            supply_current: res
                .source_current("VDD")
                .unwrap()
                .into_iter()
                .map(|i| -i)
                .collect(),
            vdd,
        })
    }

    /// Extracts the membrane threshold at the given supply voltage by a DC
    /// sweep of the membrane node: the `Vmem` value at which `Vout`
    /// crosses `vdd/2` rising (paper Fig. 6a).
    ///
    /// # Errors
    /// Propagates solver failures.
    pub fn threshold(&self, vdd: f64) -> Result<f64> {
        let mut net = Netlist::new();
        let nodes = self.build(&mut net, "ah", vdd)?;
        net.vsource("VDD", nodes.vdd, Netlist::GROUND, Waveform::Dc(vdd))?;
        net.vsource("VMEM", nodes.mem, Netlist::GROUND, Waveform::Dc(0.0))?;
        let circuit = net.compile()?;
        let n = 200;
        let values: Vec<f64> = (0..=n).map(|i| vdd * i as f64 / n as f64).collect();
        let ops = circuit.dc_sweep("VMEM", &values, &SolveOptions::default())?;
        let level = 0.5 * vdd;
        for pair in ops.windows(2) {
            let (y0, y1) = (pair[0].voltage(nodes.out), pair[1].voltage(nodes.out));
            if y0 < level && y1 >= level {
                let (x0, x1) = (pair[0].voltage(nodes.mem), pair[1].voltage(nodes.mem));
                if (y1 - y0).abs() < f64::MIN_POSITIVE {
                    return Ok(x0);
                }
                return Ok(x0 + (level - y0) * (x1 - x0) / (y1 - y0));
            }
        }
        Err(neurofi_spice::Error::InvalidAnalysis(format!(
            "axon hillock output never crossed vdd/2 during threshold sweep at vdd={vdd}"
        )))
    }

    /// Renders the complete test bench (neuron + supply + stimulus) as a
    /// SPICE deck for inspection or external simulation.
    ///
    /// # Errors
    /// Propagates netlist construction errors.
    pub fn export_deck(&self, vdd: f64, input: &InputSpec) -> Result<String> {
        let mut net = Netlist::new();
        let nodes = self.build(&mut net, "ah", vdd)?;
        net.vsource("VDD", nodes.vdd, Netlist::GROUND, Waveform::Dc(vdd))?;
        net.isource("IIN", Netlist::GROUND, nodes.mem, input.waveform())?;
        Ok(neurofi_spice::export::to_deck(
            "axon hillock neuron (paper fig. 2a)",
            &net,
            Some(&TranSpec::new(45.0e-6, 20.0e-9).with_uic()),
        ))
    }

    /// Mean output spike period under the given stimulus; simulates long
    /// enough for several spikes.
    ///
    /// # Errors
    /// Propagates solver failures, or [`neurofi_spice::Error::InvalidAnalysis`]
    /// if fewer than two spikes fire within the window.
    pub fn spike_period(&self, vdd: f64, input: &InputSpec) -> Result<f64> {
        // During integration the output is low and quasi-static, so the
        // feedback capacitor loads the membrane in parallel with Cmem;
        // time to first spike ≈ (Cmem+Cfb)·Vth/Iavg. Allow several periods.
        let t_first = (self.c_mem + self.c_fb) * 0.6 * vdd / input.average_current();
        let tstop = 5.0 * t_first;
        let wave = self.simulate(vdd, input, tstop, 20.0 * NANO)?;
        wave.mean_output_period().ok_or_else(|| {
            neurofi_spice::Error::InvalidAnalysis(format!(
                "axon hillock produced fewer than two spikes in {tstop:.2e}s at vdd={vdd}"
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofi_spice::measure;

    #[test]
    fn input_spec_average_current() {
        let spec = InputSpec::paper_axon_hillock();
        assert!((spec.average_current() - 100.0e-9).abs() < 1.0e-12);
        let dc = InputSpec {
            amplitude: 200.0e-9,
            width: 1.0,
            period: 1.0,
        };
        assert!((dc.average_current() - 200.0e-9).abs() < 1e-15);
    }

    #[test]
    fn neuron_spikes_periodically() {
        let neuron = AxonHillock::default();
        let wave = neuron
            .simulate(1.0, &InputSpec::paper_axon_hillock(), 45.0e-6, 20.0e-9)
            .unwrap();
        let spikes = wave.output_spike_times();
        assert!(
            spikes.len() >= 3,
            "expected at least 3 spikes, got {} ({:?})",
            spikes.len(),
            spikes
        );
        // Roughly uniform periods (within 30%).
        let periods: Vec<f64> = spikes.windows(2).map(|w| w[1] - w[0]).collect();
        let mean: f64 = periods.iter().sum::<f64>() / periods.len() as f64;
        for p in &periods {
            assert!((p - mean).abs() / mean < 0.3, "period jitter too large");
        }
    }

    #[test]
    fn membrane_ramps_and_resets() {
        let neuron = AxonHillock::default();
        let wave = neuron
            .simulate(1.0, &InputSpec::paper_axon_hillock(), 20.0e-6, 20.0e-9)
            .unwrap();
        let vmax = measure::maximum(&wave.vmem);
        let vmin = measure::minimum(&wave.vmem);
        // The membrane ramps to the ~0.5 V threshold, then the Cfb divider
        // kicks it up by ~Cfb/(Cmem+Cfb)·VDD ≈ 0.5 V (Mead's regenerative
        // kick), so the peak sits near VDD; the reset pulls it back down.
        assert!(vmax > 0.55 && vmax < 1.1, "vmax={vmax}");
        assert!(vmin < 0.2, "vmin={vmin}");
    }

    #[test]
    fn threshold_near_half_vdd_at_nominal() {
        let thr = AxonHillock::default().threshold(1.0).unwrap();
        assert!((thr - 0.5).abs() < 0.06, "threshold {thr}");
    }

    #[test]
    fn threshold_tracks_vdd_like_paper_fig6a() {
        let neuron = AxonHillock::default();
        let nominal = neuron.threshold(1.0).unwrap();
        let low = neuron.threshold(0.8).unwrap();
        let high = neuron.threshold(1.2).unwrap();
        let low_pct = (low - nominal) / nominal * 100.0;
        let high_pct = (high - nominal) / nominal * 100.0;
        // Paper: −17.91% at 0.8 V, +16.76% at 1.2 V.
        assert!(low_pct < -10.0 && low_pct > -25.0, "low {low_pct:.1}%");
        assert!(high_pct > 10.0 && high_pct < 25.0, "high {high_pct:.1}%");
    }

    #[test]
    fn sizing_defense_pins_threshold() {
        // Fig. 9c direction: a 32:1 first-inverter ratio reduces the
        // threshold's VDD sensitivity. The paper's HSPICE reports −18% →
        // −5.23%; our EKV model's wide moderate-inversion region limits the
        // pinning to ≈−15% (the trip point's PMOS leaves strong inversion
        // at low VDD) — the direction and monotonicity are preserved, the
        // magnitude is weaker. Recorded as a known deviation in
        // EXPERIMENTS.md.
        let stock = AxonHillock::default();
        let sized = AxonHillock::default().with_first_inverter_ratio(32.0);
        let stock_change = (stock.threshold(0.8).unwrap() - stock.threshold(1.0).unwrap())
            / stock.threshold(1.0).unwrap();
        let sized_change = (sized.threshold(0.8).unwrap() - sized.threshold(1.0).unwrap())
            / sized.threshold(1.0).unwrap();
        assert!(
            sized_change.abs() < stock_change.abs() - 0.02,
            "sizing must reduce sensitivity by ≥2pp: {:.1}% vs {:.1}%",
            sized_change * 100.0,
            stock_change * 100.0
        );
    }

    #[test]
    fn comparator_defense_decouples_threshold_from_vdd() {
        let neuron = AxonHillock::default().with_comparator_stage();
        let nominal = neuron.threshold(1.0).unwrap();
        let low = neuron.threshold(0.8).unwrap();
        let pct = (low - nominal) / nominal * 100.0;
        assert!(pct.abs() < 4.0, "comparator threshold moved {pct:.2}%");
    }

    #[test]
    fn exported_deck_parses_and_contains_the_circuit() {
        let neuron = AxonHillock::default();
        let deck = neuron
            .export_deck(1.0, &InputSpec::paper_axon_hillock())
            .unwrap();
        let parsed = neurofi_spice::parse::parse_deck(&deck).unwrap();
        // 2 caps + 2 parasitics + 6 FETs + VPW + VDD + IIN = 13 elements.
        assert_eq!(parsed.netlist.elements().len(), 13);
        assert!(parsed.netlist.find_node("ah_mem").is_some());
    }

    #[test]
    fn faster_input_spikes_sooner() {
        // Higher input amplitude → shorter period (Fig. 5c direction).
        let neuron = AxonHillock::default();
        let spec = InputSpec::paper_axon_hillock();
        let nominal = neuron.spike_period(1.0, &spec).unwrap();
        let fast = neuron
            .spike_period(1.0, &spec.with_amplitude(264.0e-9))
            .unwrap();
        let slow = neuron
            .spike_period(1.0, &spec.with_amplitude(136.0e-9))
            .unwrap();
        assert!(fast < nominal && nominal < slow);
        let fast_pct = (fast - nominal) / nominal * 100.0;
        let slow_pct = (slow - nominal) / nominal * 100.0;
        // Paper: −24.7% and +53.7%.
        assert!(fast_pct < -15.0 && fast_pct > -35.0, "fast {fast_pct:.1}%");
        assert!(slow_pct > 30.0 && slow_pct < 75.0, "slow {slow_pct:.1}%");
    }
}
