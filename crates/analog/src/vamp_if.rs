//! The voltage-amplifier I&F neuron (paper Fig. 2b, after van Schaik).
//!
//! A 5-transistor OTA compares the membrane voltage against an explicit
//! threshold `Vthr` derived from VDD by a resistive divider — the paper's
//! key observation is that this makes the threshold scale linearly with the
//! supply (Fig. 6a), handing an attacker a clean knob.
//!
//! Spike machinery: when `Vmem` crosses `Vthr` the OTA output rises, the
//! first inverter falls and (a) pulls the membrane up to VDD through a PMOS
//! (the spike), (b) charges the 20 pF refractory capacitor `Ck` to VDD.
//! `Ck` drives the reset transistor `MN1`, which yanks the membrane to
//! ground and holds it there while `Ck` discharges through a bias-limited
//! NMOS — an *explicit refractory period*. Because `Ck` discharges from VDD
//! down to a fixed activation voltage, the refractory duration also scales
//! with VDD; this is why the neuron's firing period is much more sensitive
//! to supply manipulation (Fig. 6c: −17%/+24%) than to input-amplitude
//! manipulation (Fig. 5c: −6.7%/+14.5%, diluted by the fixed refractory).

use neurofi_spice::device::MosModel;
use neurofi_spice::error::Result;
use neurofi_spice::units::{MEGA, MICRO, NANO, PICO};
use neurofi_spice::waveform::Waveform;
use neurofi_spice::{Netlist, NodeId, SolveOptions, TranSpec};

use crate::axon_hillock::InputSpec;
use crate::bandgap::BandgapReference;
use crate::NeuronWaveforms;

/// How the explicit threshold voltage `Vthr` is generated.
#[derive(Debug, Clone, PartialEq)]
pub enum ThresholdSource {
    /// Resistive divider from VDD (the stock, vulnerable design):
    /// `Vthr = VDD/2`, so the threshold tracks supply manipulation.
    VddDivider {
        /// Upper divider resistor, ohms.
        r_top: f64,
        /// Lower divider resistor, ohms.
        r_bottom: f64,
    },
    /// Bandgap reference (the §V-B defense): `Vthr` is VDD-independent up
    /// to the bandgap's ±0.56% residual.
    Bandgap(BandgapReference),
}

/// The voltage-amplifier I&F neuron circuit.
///
/// [`Default`] reproduces the paper's design point: `Cmem = 10 pF`,
/// `Ck = 20 pF`, `Vthr = 0.5 V` at VDD = 1 V, leak bias `Vlk = 0.2 V`.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageAmplifierIf {
    /// Membrane capacitance, farads (10 pF).
    pub c_mem: f64,
    /// Refractory capacitor, farads (20 pF).
    pub c_k: f64,
    /// Leak transistor gate bias, volts (0.2 V — subthreshold leak).
    pub v_lk: f64,
    /// OTA tail-current bias, volts.
    pub v_bias: f64,
    /// Refractory discharge bias, volts; sets the constant current that
    /// drains `Ck` and therefore the refractory duration.
    pub v_refractory: f64,
    /// Threshold generator.
    pub threshold_source: ThresholdSource,
    /// Channel length used throughout, meters.
    pub l: f64,
    /// Reset transistor MN1 width, meters.
    pub w_reset: f64,
    /// NMOS model card.
    pub nmos: MosModel,
    /// PMOS model card.
    pub pmos: MosModel,
}

impl Default for VoltageAmplifierIf {
    fn default() -> VoltageAmplifierIf {
        VoltageAmplifierIf {
            c_mem: 10.0 * PICO,
            c_k: 20.0 * PICO,
            v_lk: 0.2,
            v_bias: 0.4,
            v_refractory: 0.29,
            threshold_source: ThresholdSource::VddDivider {
                r_top: 1.0 * MEGA,
                r_bottom: 1.0 * MEGA,
            },
            l: 65.0 * NANO,
            w_reset: 4.0 * MICRO,
            nmos: MosModel::ptm65_nmos(),
            pmos: MosModel::ptm65_pmos(),
        }
    }
}

/// Node handles returned by [`VoltageAmplifierIf::build`].
#[derive(Debug, Clone, Copy)]
pub struct VampIfNodes {
    /// Supply node.
    pub vdd: NodeId,
    /// Membrane node.
    pub mem: NodeId,
    /// OTA output (high while the neuron is spiking) — used as `Vout`.
    pub amp_out: NodeId,
    /// Threshold node.
    pub thr: NodeId,
}

impl VoltageAmplifierIf {
    /// Returns a copy using a bandgap-referenced threshold (§V-B defense).
    #[must_use]
    pub fn with_bandgap_threshold(mut self) -> VoltageAmplifierIf {
        self.threshold_source = ThresholdSource::Bandgap(BandgapReference::new(0.5));
        self
    }

    /// Adds the neuron to `net`; inject input current into the returned
    /// `mem` node and drive the `vdd` rail externally.
    ///
    /// # Errors
    /// Propagates netlist construction errors.
    pub fn build(&self, net: &mut Netlist, prefix: &str, vdd_value: f64) -> Result<VampIfNodes> {
        let gnd = Netlist::GROUND;
        let vdd = net.node(&format!("{prefix}_vdd"));
        let mem = net.node(&format!("{prefix}_mem"));
        let thr = net.node(&format!("{prefix}_thr"));
        let tail = net.node(&format!("{prefix}_tail"));
        let n1 = net.node(&format!("{prefix}_n1"));
        let amp_out = net.node(&format!("{prefix}_aout"));
        let inv1 = net.node(&format!("{prefix}_inv1"));
        let ck = net.node(&format!("{prefix}_ck"));
        let vb = net.node(&format!("{prefix}_vb"));
        let vlk = net.node(&format!("{prefix}_vlk"));
        let vrfr = net.node(&format!("{prefix}_vrfr"));

        net.capacitor_ic(&format!("{prefix}_CMEM"), mem, gnd, self.c_mem, 0.0)?;
        net.capacitor_ic(&format!("{prefix}_CK"), ck, gnd, self.c_k, 0.0)?;
        // Lumped parasitics at the high-impedance amplifier/inverter nodes
        // (see the Axon Hillock builder for the rationale). Quiescent ICs:
        // membrane at 0 ⇒ OTA output low ⇒ first-inverter output high.
        net.capacitor_ic(&format!("{prefix}_CPA"), amp_out, gnd, 20.0e-15, 0.0)?;
        net.capacitor_ic(&format!("{prefix}_CPI"), inv1, gnd, 20.0e-15, vdd_value)?;

        // Threshold generation.
        match &self.threshold_source {
            ThresholdSource::VddDivider { r_top, r_bottom } => {
                net.resistor(&format!("{prefix}_RD1"), vdd, thr, *r_top)?;
                net.resistor(&format!("{prefix}_RD2"), thr, gnd, *r_bottom)?;
            }
            ThresholdSource::Bandgap(reference) => {
                net.vsource(
                    &format!("{prefix}_VTHR"),
                    thr,
                    gnd,
                    Waveform::Dc(reference.output(vdd_value)),
                )?;
            }
        }

        // Biases.
        net.vsource(&format!("{prefix}_VB"), vb, gnd, Waveform::Dc(self.v_bias))?;
        net.vsource(&format!("{prefix}_VLK"), vlk, gnd, Waveform::Dc(self.v_lk))?;
        net.vsource(
            &format!("{prefix}_VRFR"),
            vrfr,
            gnd,
            Waveform::Dc(self.v_refractory),
        )?;

        // Membrane leak (MN4).
        net.mosfet(
            &format!("{prefix}_MN4"),
            mem,
            vlk,
            gnd,
            gnd,
            self.nmos.clone(),
            1.0 * MICRO,
            self.l,
        )?;

        // 5T OTA: in+ = mem (mirror side), in− = thr (output side);
        // amp_out rises when mem > thr.
        net.mosfet(
            &format!("{prefix}_MNT"),
            tail,
            vb,
            gnd,
            gnd,
            self.nmos.clone(),
            2.0 * MICRO,
            self.l,
        )?;
        net.mosfet(
            &format!("{prefix}_MIP"),
            n1,
            mem,
            tail,
            gnd,
            self.nmos.clone(),
            1.0 * MICRO,
            self.l,
        )?;
        net.mosfet(
            &format!("{prefix}_MIM"),
            amp_out,
            thr,
            tail,
            gnd,
            self.nmos.clone(),
            1.0 * MICRO,
            self.l,
        )?;
        net.mosfet(
            &format!("{prefix}_MPA"),
            n1,
            n1,
            vdd,
            vdd,
            self.pmos.clone(),
            2.0 * MICRO,
            self.l,
        )?;
        net.mosfet(
            &format!("{prefix}_MPB"),
            amp_out,
            n1,
            vdd,
            vdd,
            self.pmos.clone(),
            2.0 * MICRO,
            self.l,
        )?;

        // First inverter.
        net.mosfet(
            &format!("{prefix}_MPI"),
            inv1,
            amp_out,
            vdd,
            vdd,
            self.pmos.clone(),
            2.5 * MICRO,
            self.l,
        )?;
        net.mosfet(
            &format!("{prefix}_MNI"),
            inv1,
            amp_out,
            gnd,
            gnd,
            self.nmos.clone(),
            1.0 * MICRO,
            self.l,
        )?;

        // Spike pull-up of the membrane.
        net.mosfet(
            &format!("{prefix}_MPU"),
            mem,
            inv1,
            vdd,
            vdd,
            self.pmos.clone(),
            2.0 * MICRO,
            self.l,
        )?;

        // Refractory stage ("second inverter" with bias-limited pull-down):
        // strong PMOS charges Ck to VDD during the spike; the weak,
        // constant-bias NMOS discharges it slowly afterwards.
        net.mosfet(
            &format!("{prefix}_MPK"),
            ck,
            inv1,
            vdd,
            vdd,
            self.pmos.clone(),
            2.0 * MICRO,
            self.l,
        )?;
        net.mosfet(
            &format!("{prefix}_MND"),
            ck,
            vrfr,
            gnd,
            gnd,
            self.nmos.clone(),
            1.0 * MICRO,
            self.l,
        )?;

        // Reset transistor: Ck holds the membrane at ground while high.
        net.mosfet(
            &format!("{prefix}_MN1"),
            mem,
            ck,
            gnd,
            gnd,
            self.nmos.clone(),
            self.w_reset,
            self.l,
        )?;
        Ok(VampIfNodes {
            vdd,
            mem,
            amp_out,
            thr,
        })
    }

    /// Transient simulation driven by the given input (the paper's
    /// Figs. 2d and 4 test bench). `dc_equivalent` replaces the pulse train
    /// with its average current — numerically indistinguishable for the
    /// slow 10 pF membrane and ~10× faster to simulate.
    ///
    /// # Errors
    /// Propagates solver failures.
    pub fn simulate(
        &self,
        vdd: f64,
        input: &InputSpec,
        tstop: f64,
        dt: f64,
        dc_equivalent: bool,
    ) -> Result<NeuronWaveforms> {
        let mut net = Netlist::new();
        let nodes = self.build(&mut net, "vif", vdd)?;
        net.vsource("VDD", nodes.vdd, Netlist::GROUND, Waveform::Dc(vdd))?;
        let wave = if dc_equivalent {
            Waveform::Dc(input.average_current())
        } else {
            input.waveform()
        };
        net.isource("IIN", Netlist::GROUND, nodes.mem, wave)?;
        let spec = TranSpec::new(tstop, dt).with_uic();
        let res = net.compile()?.tran(&spec)?;
        Ok(NeuronWaveforms {
            times: res.times().to_vec(),
            vmem: res.voltage(nodes.mem),
            vout: res.voltage(nodes.amp_out),
            supply_current: res
                .source_current("VDD")
                .unwrap()
                .into_iter()
                .map(|i| -i)
                .collect(),
            vdd,
        })
    }

    /// Extracts the effective firing threshold at the given supply: the
    /// membrane voltage at which the OTA output crosses `vdd/2` rising
    /// (paper Fig. 6a). Includes the divider value *and* the amplifier's
    /// input-referred offset.
    ///
    /// # Errors
    /// Propagates solver failures.
    pub fn threshold(&self, vdd: f64) -> Result<f64> {
        let mut net = Netlist::new();
        let nodes = self.build(&mut net, "vif", vdd)?;
        net.vsource("VDD", nodes.vdd, Netlist::GROUND, Waveform::Dc(vdd))?;
        net.vsource("VMEM", nodes.mem, Netlist::GROUND, Waveform::Dc(0.0))?;
        let circuit = net.compile()?;
        let n = 240;
        let values: Vec<f64> = (0..=n).map(|i| vdd * i as f64 / n as f64).collect();
        let ops = circuit.dc_sweep("VMEM", &values, &SolveOptions::default())?;
        let level = 0.5 * vdd;
        for pair in ops.windows(2) {
            let (y0, y1) = (
                pair[0].voltage(nodes.amp_out),
                pair[1].voltage(nodes.amp_out),
            );
            if y0 < level && y1 >= level {
                let (x0, x1) = (pair[0].voltage(nodes.mem), pair[1].voltage(nodes.mem));
                if (y1 - y0).abs() < f64::MIN_POSITIVE {
                    return Ok(x0);
                }
                return Ok(x0 + (level - y0) * (x1 - x0) / (y1 - y0));
            }
        }
        Err(neurofi_spice::Error::InvalidAnalysis(format!(
            "vamp-if amplifier output never crossed vdd/2 during threshold sweep at vdd={vdd}"
        )))
    }

    /// Renders the complete test bench (neuron + supply + stimulus) as a
    /// SPICE deck for inspection or external simulation.
    ///
    /// # Errors
    /// Propagates netlist construction errors.
    pub fn export_deck(&self, vdd: f64, input: &InputSpec) -> Result<String> {
        let mut net = Netlist::new();
        let nodes = self.build(&mut net, "vif", vdd)?;
        net.vsource("VDD", nodes.vdd, Netlist::GROUND, Waveform::Dc(vdd))?;
        net.isource("IIN", Netlist::GROUND, nodes.mem, input.waveform())?;
        Ok(neurofi_spice::export::to_deck(
            "voltage-amplifier i&f neuron (paper fig. 2b)",
            &net,
            Some(&TranSpec::new(700.0e-6, 50.0e-9).with_uic()),
        ))
    }

    /// Mean firing period (membrane-threshold crossings) under the given
    /// stimulus; simulates long enough for at least two spikes.
    ///
    /// # Errors
    /// Propagates solver failures, or
    /// [`neurofi_spice::Error::InvalidAnalysis`] if fewer than two spikes
    /// fire in the window.
    pub fn spike_period(&self, vdd: f64, input: &InputSpec) -> Result<f64> {
        // Integration ≈ Cmem·Vthr/Iavg; refractory ≈ Ck·VDD/I_dis ≈ 4× that
        // at nominal. Simulate 3 worst-case periods.
        let t_int = self.c_mem * 0.65 * vdd / input.average_current();
        let tstop = 16.0 * t_int;
        let wave = self.simulate(vdd, input, tstop, 50.0 * NANO, true)?;
        // Count spikes on the membrane: rising crossings of 90% of the
        // threshold (the upstroke to VDD is fast; the ramp below is slow).
        let level = 0.45 * vdd.min(1.0) + 0.3 * (vdd - 1.0).max(0.0);
        let spikes = neurofi_spice::measure::spike_times(&wave.times, &wave.vmem, level);
        if spikes.len() < 2 {
            return Err(neurofi_spice::Error::InvalidAnalysis(format!(
                "vamp-if produced fewer than two spikes in {tstop:.2e}s at vdd={vdd}"
            )));
        }
        Ok((spikes[spikes.len() - 1] - spikes[0]) / (spikes.len() - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofi_spice::measure;

    #[test]
    fn divider_threshold_is_half_vdd() {
        let neuron = VoltageAmplifierIf::default();
        let thr = neuron.threshold(1.0).unwrap();
        assert!((thr - 0.5).abs() < 0.08, "threshold {thr}");
    }

    #[test]
    fn threshold_scales_with_vdd_like_paper_fig6a() {
        let neuron = VoltageAmplifierIf::default();
        let nominal = neuron.threshold(1.0).unwrap();
        let low = neuron.threshold(0.8).unwrap();
        let high = neuron.threshold(1.2).unwrap();
        let low_pct = (low - nominal) / nominal * 100.0;
        let high_pct = (high - nominal) / nominal * 100.0;
        // Paper: −18.01% .. +17.14%.
        assert!(low_pct < -12.0 && low_pct > -26.0, "low {low_pct:.1}%");
        assert!(high_pct > 12.0 && high_pct < 26.0, "high {high_pct:.1}%");
    }

    #[test]
    fn bandgap_threshold_is_vdd_insensitive() {
        let neuron = VoltageAmplifierIf::default().with_bandgap_threshold();
        let nominal = neuron.threshold(1.0).unwrap();
        let low = neuron.threshold(0.8).unwrap();
        let pct = (low - nominal) / nominal * 100.0;
        assert!(pct.abs() < 3.0, "bandgap threshold moved {pct:.2}%");
    }

    #[test]
    fn neuron_fires_and_resets() {
        let neuron = VoltageAmplifierIf::default();
        let wave = neuron
            .simulate(1.0, &InputSpec::paper_vamp_if(), 400.0e-6, 50.0e-9, true)
            .unwrap();
        let vmax = measure::maximum(&wave.vmem);
        // The spike pulls the membrane up toward VDD; the reset transistor
        // starts winning the race once Ck charges, so the peak lands a bit
        // below the rail (van Schaik's design has the same race).
        assert!(vmax > 0.7, "vmax={vmax}");
        // And the reset returns it near ground.
        let spikes = measure::spike_times(&wave.times, &wave.vmem, 0.45);
        assert!(!spikes.is_empty(), "neuron never fired");
        let after = spikes[0] + 30.0e-6;
        let idx = wave.times.iter().position(|&t| t > after).unwrap();
        assert!(
            wave.vmem[idx] < 0.15,
            "membrane not reset: {}",
            wave.vmem[idx]
        );
    }

    #[test]
    fn refractory_period_dominates() {
        // The integration phase should be a minority of the firing period
        // (this is what dilutes the amplitude sensitivity, Fig. 5c).
        let neuron = VoltageAmplifierIf::default();
        let input = InputSpec::paper_vamp_if();
        let period = neuron.spike_period(1.0, &input).unwrap();
        let t_int_est = neuron.c_mem * 0.5 / input.average_current();
        let frac = t_int_est / period;
        assert!(
            frac > 0.1 && frac < 0.45,
            "integration fraction {frac:.2} outside the refractory-dominated regime"
        );
    }

    #[test]
    fn amplitude_sensitivity_is_diluted() {
        // Fig. 5c: ±32% amplitude => only −6.7%/+14.5% period change.
        let neuron = VoltageAmplifierIf::default();
        let spec = InputSpec::paper_vamp_if();
        let nominal = neuron.spike_period(1.0, &spec).unwrap();
        let fast = neuron
            .spike_period(1.0, &spec.with_amplitude(264.0e-9))
            .unwrap();
        let slow = neuron
            .spike_period(1.0, &spec.with_amplitude(136.0e-9))
            .unwrap();
        let fast_pct = (fast - nominal) / nominal * 100.0;
        let slow_pct = (slow - nominal) / nominal * 100.0;
        assert!(fast_pct < -2.0 && fast_pct > -14.0, "fast {fast_pct:.1}%");
        assert!(slow_pct > 4.0 && slow_pct < 25.0, "slow {slow_pct:.1}%");
    }

    #[test]
    fn dc_equivalent_matches_pulse_train() {
        // The DC-equivalent speedup shifts the absolute firing period by a
        // modest systematic amount (the refractory-escape dynamics see the
        // instantaneous rather than the average current), but every figure
        // reports *relative* changes measured in a single mode, where the
        // bias cancels. Keep the absolute agreement within 20%.
        let neuron = VoltageAmplifierIf::default();
        let input = InputSpec::paper_vamp_if();
        let t_int = neuron.c_mem * 0.65 / input.average_current();
        let tstop = 16.0 * t_int;
        let period_of = |dc: bool| {
            let wave = neuron.simulate(1.0, &input, tstop, 50.0e-9, dc).unwrap();
            let spikes = measure::spike_times(&wave.times, &wave.vmem, 0.45);
            assert!(spikes.len() >= 2, "need two spikes (dc={dc})");
            (spikes[spikes.len() - 1] - spikes[0]) / (spikes.len() - 1) as f64
        };
        let p_dc = period_of(true);
        let p_pulse = period_of(false);
        assert!(
            ((p_dc - p_pulse) / p_pulse).abs() < 0.20,
            "dc {p_dc:.3e} vs pulse {p_pulse:.3e}"
        );
    }
}
