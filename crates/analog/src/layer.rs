//! Whole-layer netlist: N Axon Hillock neurons on a shared supply rail.
//!
//! The paper's circuit figures characterise one neuron against an ideal
//! supply; its attack model then assumes every neuron of a layer sees
//! the manipulated VDD identically. This module builds the circuit in
//! between: a row of [`AxonHillock`] neurons hanging off one external
//! supply through a resistive rail, each with a local decoupling
//! capacitor, all sharing a single `Vpw` bias distribution — the
//! smallest netlist where supply droop is *position-dependent* and the
//! layer's aggregate firing activity loads the rail it is attacked
//! through.
//!
//! At 5 unknowns per neuron the workload quickly outgrows the dense
//! MNA path (a 200-neuron layer is a ≈1000-unknown system), which is
//! exactly the regime the sparse engine in `neurofi-solver` exists
//! for; [`LayerNetlist::simulate`] therefore takes an explicit
//! [`Engine`] so callers choose, and benchmarks can race the two.

use neurofi_spice::error::Result;
use neurofi_spice::units::{FEMTO, NANO};
use neurofi_spice::{measure, Engine, Netlist, NodeId, TranSpec, TranStats, Waveform};

use crate::axon_hillock::{AxonHillock, AxonHillockNodes, InputSpec};

/// A layer of Axon Hillock neurons on a shared parasitic supply rail.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNetlist {
    /// Number of neuron instances (must be at least 1).
    pub neurons: usize,
    /// The neuron design every instance shares.
    pub neuron: AxonHillock,
    /// External supply voltage, volts (the attack surface).
    pub vdd: f64,
    /// Rail resistance per segment, ohms — one segment between
    /// consecutive neuron taps, so neuron `i` sits behind `i + 1`
    /// segments of rail.
    pub r_rail: f64,
    /// Local decoupling capacitance at each neuron's supply tap, farads.
    pub c_decap: f64,
    /// Base input stimulus; per-neuron waveforms are derived from it
    /// (see [`LayerNetlist::input_waveform`]).
    pub input: InputSpec,
    /// Deterministic per-neuron input-amplitude spread, as a fraction
    /// of the base amplitude (neuron 0 gets `1 - spread`, the last
    /// neuron `1 + spread`). Desynchronises firing so the rail sees a
    /// realistic aggregate load instead of N identical copies.
    pub input_spread: f64,
}

/// Node handles returned by [`LayerNetlist::build`].
#[derive(Debug, Clone)]
pub struct LayerNodes {
    /// External supply node (driven by the `VDD` source).
    pub supply: NodeId,
    /// Shared `Vpw` bias node.
    pub vpw: NodeId,
    /// Per-neuron local supply taps, in layer order.
    pub taps: Vec<NodeId>,
    /// Per-neuron circuit nodes, in layer order.
    pub cells: Vec<AxonHillockNodes>,
}

/// Aggregate measurements from one layer transient.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerResponse {
    /// Number of neurons simulated.
    pub neurons: usize,
    /// External supply voltage, volts.
    pub vdd: f64,
    /// Simulated window, seconds.
    pub duration: f64,
    /// Output spikes per neuron, in layer order.
    pub spike_counts: Vec<usize>,
    /// Smallest voltage seen at the far-end supply tap, volts — the
    /// worst-case position for rail droop.
    pub min_rail_voltage: f64,
    /// Transient/solver statistics of the run.
    pub stats: TranStats,
}

impl LayerResponse {
    /// Total output spikes across the layer.
    pub fn total_spikes(&self) -> usize {
        self.spike_counts.iter().sum()
    }

    /// Mean output spikes per neuron over the window.
    pub fn mean_spikes_per_neuron(&self) -> f64 {
        self.total_spikes() as f64 / self.neurons.max(1) as f64
    }

    /// Mean per-neuron firing rate, hertz.
    pub fn mean_rate_hz(&self) -> f64 {
        if self.duration > 0.0 {
            self.mean_spikes_per_neuron() / self.duration
        } else {
            0.0
        }
    }

    /// Worst-case supply droop at the far end of the rail, volts.
    pub fn worst_droop(&self) -> f64 {
        self.vdd - self.min_rail_voltage
    }
}

impl LayerNetlist {
    /// The paper-nominal layer: stock neurons, 200 nA / 40 MHz input,
    /// 1 Ω rail segments and 100 fF of local decoupling per neuron,
    /// with a ±5% deterministic input spread.
    pub fn paper_layer(neurons: usize) -> LayerNetlist {
        LayerNetlist {
            neurons,
            neuron: AxonHillock::default(),
            vdd: 1.0,
            r_rail: 1.0,
            c_decap: 100.0 * FEMTO,
            input: InputSpec::paper_axon_hillock(),
            input_spread: 0.05,
        }
    }

    /// Returns a copy at a different external supply voltage.
    #[must_use]
    pub fn with_vdd(mut self, vdd: f64) -> LayerNetlist {
        self.vdd = vdd;
        self
    }

    /// Unknown count of the compiled MNA system: 5 nodes per neuron
    /// (membrane, stage-1, output, reset, local supply tap) plus the
    /// external supply and shared bias nodes and their two source
    /// branch currents.
    pub fn unknowns(&self) -> usize {
        5 * self.neurons + 4
    }

    /// The input waveform of neuron `i`: the base stimulus with a
    /// deterministic amplitude spread across the layer and a sub-period
    /// phase stagger, so instances fire out of lockstep.
    pub fn input_waveform(&self, i: usize) -> Waveform {
        let span = (self.neurons.saturating_sub(1)).max(1) as f64;
        let frac = i as f64 / span;
        let amplitude = self.input.amplitude * (1.0 + self.input_spread * (2.0 * frac - 1.0));
        let delay = self.input.period * (i % 8) as f64 / 8.0;
        Waveform::spike_train(amplitude, self.input.width, self.input.period, delay)
    }

    /// Adds the whole layer to `net`: the external supply and shared
    /// bias sources, the segmented rail with per-tap decoupling, and
    /// one neuron plus input source per tap.
    ///
    /// # Errors
    /// Rejects an empty layer; propagates netlist construction errors.
    pub fn build(&self, net: &mut Netlist) -> Result<LayerNodes> {
        if self.neurons == 0 {
            return Err(neurofi_spice::Error::Netlist(
                "a layer needs at least one neuron".into(),
            ));
        }
        let gnd = Netlist::GROUND;
        let supply = net.node("vdd_ext");
        let vpw = net.node("vpw");
        net.vsource("VDD", supply, gnd, Waveform::Dc(self.vdd))?;
        net.vsource("VPW", vpw, gnd, Waveform::Dc(self.neuron.v_pw))?;
        let mut taps = Vec::with_capacity(self.neurons);
        let mut cells = Vec::with_capacity(self.neurons);
        let mut prev = supply;
        for i in 0..self.neurons {
            let tap = net.node(&format!("rail{i}"));
            net.resistor(&format!("RRAIL{i}"), prev, tap, self.r_rail)?;
            // The decap starts charged: a powered-up layer, not a rail
            // inrush experiment (under `uic` an IC-less capacitor would
            // drag every tap to 0 V at t = 0).
            net.capacitor_ic(&format!("CDECAP{i}"), tap, gnd, self.c_decap, self.vdd)?;
            let cell =
                self.neuron
                    .build_on_rails(net, &format!("u{i}"), tap, Some(vpw), self.vdd)?;
            net.isource(&format!("IIN{i}"), gnd, cell.mem, self.input_waveform(i))?;
            taps.push(tap);
            cells.push(cell);
            prev = tap;
        }
        Ok(LayerNodes {
            supply,
            vpw,
            taps,
            cells,
        })
    }

    /// Transient simulation of the layer on the chosen engine,
    /// measuring per-neuron firing and worst-case rail droop.
    ///
    /// # Errors
    /// Propagates netlist construction and solver failures.
    pub fn simulate(&self, engine: Engine, tstop: f64, dt: f64) -> Result<LayerResponse> {
        let mut net = Netlist::new();
        let nodes = self.build(&mut net)?;
        let spec = TranSpec::new(tstop, dt).with_uic();
        let res = net.compile()?.tran_with_engine(engine, &spec)?;
        let times = res.times();
        let spike_counts = nodes
            .cells
            .iter()
            .map(|cell| measure::spike_times(times, &res.voltage(cell.out), 0.5 * self.vdd).len())
            .collect();
        let far_tap = res.voltage(nodes.taps[self.neurons - 1]);
        Ok(LayerResponse {
            neurons: self.neurons,
            vdd: self.vdd,
            duration: tstop,
            spike_counts,
            min_rail_voltage: measure::minimum(&far_tap),
            stats: *res.stats(),
        })
    }

    /// The standard measurement window for scenario cells and smoke
    /// tests: long enough for several spikes at the paper-nominal
    /// stimulus, short enough that a 32-neuron cell stays interactive.
    pub fn cell_window() -> (f64, f64) {
        (45.0e-6, 20.0 * NANO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_layer_is_rejected() {
        let layer = LayerNetlist {
            neurons: 0,
            ..LayerNetlist::paper_layer(1)
        };
        assert!(layer.simulate(Engine::Dense, 1.0e-6, 20.0e-9).is_err());
    }

    #[test]
    fn layer_unknowns_match_compiled_dimension() {
        let layer = LayerNetlist::paper_layer(3);
        let mut net = Netlist::new();
        layer.build(&mut net).unwrap();
        let circuit = net.compile().unwrap();
        assert_eq!(circuit.unknown_count(), layer.unknowns());
    }

    #[test]
    fn small_layer_fires_and_droops() {
        let layer = LayerNetlist::paper_layer(3);
        let resp = layer.simulate(Engine::Sparse, 30.0e-6, 20.0e-9).unwrap();
        assert_eq!(resp.spike_counts.len(), 3);
        assert!(
            resp.spike_counts.iter().all(|&c| c >= 1),
            "every neuron spikes: {:?}",
            resp.spike_counts
        );
        // The rail is resistive, so the far tap must sag below VDD but
        // stay a working supply.
        let droop = resp.worst_droop();
        assert!(droop > 0.0 && droop < 0.2, "droop {droop}");
        // The sparse engine really ran: pattern reused across Newton.
        assert!(resp.stats.solver.refactorizations > 0, "{:?}", resp.stats);
        assert!(resp.stats.solver.nnz < resp.stats.solver.dim * resp.stats.solver.dim);
    }

    #[test]
    fn sparse_layer_agrees_with_dense() {
        // Engines differ only in LU factorisation order, so the Newton
        // fixed points agree to far better than measurement tolerance.
        let layer = LayerNetlist::paper_layer(2);
        let dense = layer.simulate(Engine::Dense, 20.0e-6, 20.0e-9).unwrap();
        let sparse = layer.simulate(Engine::Sparse, 20.0e-6, 20.0e-9).unwrap();
        assert_eq!(dense.spike_counts, sparse.spike_counts);
        assert!(
            (dense.min_rail_voltage - sparse.min_rail_voltage).abs() < 1.0e-6,
            "dense {} vs sparse {}",
            dense.min_rail_voltage,
            sparse.min_rail_voltage
        );
    }

    #[test]
    fn lower_vdd_slows_the_layer() {
        let nominal = LayerNetlist::paper_layer(2)
            .simulate(Engine::Sparse, 30.0e-6, 20.0e-9)
            .unwrap();
        let starved = LayerNetlist::paper_layer(2)
            .with_vdd(0.8)
            .simulate(Engine::Sparse, 30.0e-6, 20.0e-9)
            .unwrap();
        // Fig. 6b direction: the Axon Hillock fires *faster* as VDD
        // drops (threshold scales with VDD), so the undervolted layer
        // must not spike less.
        assert!(
            starved.total_spikes() >= nominal.total_spikes(),
            "starved {} vs nominal {}",
            starved.total_spikes(),
            nominal.total_spikes()
        );
    }
}
