//! SNN input current drivers.
//!
//! [`CurrentDriver`] is the paper's Fig. 5a circuit: a resistor-programmed
//! NMOS current mirror gated by a switch transistor. Its output amplitude is
//! set by `(VDD − VGS)/R1`, which is exactly why VDD manipulation corrupts
//! the input spike amplitude (Fig. 5b: 136 nA at 0.8 V → 264 nA at 1.2 V).
//!
//! [`RobustCurrentDriver`] is the Fig. 9b defense: an op-amp forces a
//! bandgap reference voltage across R1, so the output current is
//! `VRef/R1` — independent of VDD up to the bandgap's ±0.56% residual and
//! the (long-channel-suppressed) mirror mismatch.

use neurofi_spice::device::MosModel;
use neurofi_spice::error::Result;
use neurofi_spice::units::{MEGA, MICRO, NANO};
use neurofi_spice::waveform::Waveform;
use neurofi_spice::{Netlist, NodeId, SolveOptions, TranSpec};

use crate::bandgap::BandgapReference;

/// The unsecured current-mirror driver (paper Fig. 5a).
///
/// All dimensions in SI units. [`Default`] reproduces the paper's operating
/// point: ≈200 nA output at VDD = 1 V.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentDriver {
    /// Reference resistor from VDD to the diode-connected mirror input.
    pub r1: f64,
    /// Mirror transistor channel width (MN2 = MN3), meters.
    pub w_mirror: f64,
    /// Mirror transistor channel length, meters. Long (1 µm) so the mirror
    /// operates in moderate inversion with VGS ≈ 0.43 V, matching the
    /// paper's amplitude sensitivity.
    pub l_mirror: f64,
    /// Switch transistor (MN1) width, meters.
    pub w_switch: f64,
    /// Switch transistor length, meters.
    pub l_switch: f64,
    /// Voltage at which the output terminal is held while measuring the
    /// output amplitude (a surrogate for the neuron membrane), volts.
    pub out_bias: f64,
    /// NMOS model card.
    pub nmos: MosModel,
}

impl Default for CurrentDriver {
    fn default() -> CurrentDriver {
        CurrentDriver {
            r1: 2.835 * MEGA,
            w_mirror: 1.0 * MICRO,
            l_mirror: 1.0 * MICRO,
            w_switch: 2.0 * MICRO,
            l_switch: 65.0 * NANO,
            out_bias: 0.5,
            nmos: MosModel::ptm65_nmos(),
        }
    }
}

/// Node handles returned by [`CurrentDriver::build`].
#[derive(Debug, Clone, Copy)]
pub struct DriverNodes {
    /// Supply node.
    pub vdd: NodeId,
    /// Switch control input (spike voltage from the previous layer).
    pub ctrl: NodeId,
    /// Output terminal (connects to the neuron membrane).
    pub out: NodeId,
}

impl CurrentDriver {
    /// Adds the driver to `net`. `prefix` namespaces element names so
    /// several drivers can coexist in one netlist.
    ///
    /// # Errors
    /// Propagates netlist construction errors (duplicate names).
    pub fn build(&self, net: &mut Netlist, prefix: &str) -> Result<DriverNodes> {
        let vdd = net.node(&format!("{prefix}_vdd"));
        let ctrl = net.node(&format!("{prefix}_ctrl"));
        let out = net.node(&format!("{prefix}_out"));
        let nref = net.node(&format!("{prefix}_nref"));
        let mid = net.node(&format!("{prefix}_mid"));
        let gnd = Netlist::GROUND;

        net.resistor(&format!("{prefix}_R1"), vdd, nref, self.r1)?;
        // MN2: diode-connected reference device.
        net.mosfet(
            &format!("{prefix}_MN2"),
            nref,
            nref,
            gnd,
            gnd,
            self.nmos.clone(),
            self.w_mirror,
            self.l_mirror,
        )?;
        // MN3: mirror output device; MN1: series switch gated by ctrl.
        net.mosfet(
            &format!("{prefix}_MN1"),
            out,
            ctrl,
            mid,
            gnd,
            self.nmos.clone(),
            self.w_switch,
            self.l_switch,
        )?;
        net.mosfet(
            &format!("{prefix}_MN3"),
            mid,
            nref,
            gnd,
            gnd,
            self.nmos.clone(),
            self.w_mirror,
            self.l_mirror,
        )?;
        Ok(DriverNodes { vdd, ctrl, out })
    }

    /// DC output-current amplitude at the given supply voltage, amperes
    /// (switch fully on, output held at [`CurrentDriver::out_bias`]).
    ///
    /// This regenerates one point of the paper's Fig. 5b.
    ///
    /// # Errors
    /// Propagates solver failures.
    pub fn output_amplitude(&self, vdd: f64) -> Result<f64> {
        let mut net = Netlist::new();
        let nodes = self.build(&mut net, "drv")?;
        net.vsource("VDD", nodes.vdd, Netlist::GROUND, Waveform::Dc(vdd))?;
        net.vsource("VCTL", nodes.ctrl, Netlist::GROUND, Waveform::Dc(vdd))?;
        net.vsource(
            "VOUT",
            nodes.out,
            Netlist::GROUND,
            Waveform::Dc(self.out_bias),
        )?;
        let op = net.compile()?.op(&SolveOptions::default())?;
        // The mirror sinks current out of the output node; that current is
        // supplied by VOUT, flowing n→p inside the source, i.e. a negative
        // branch current. Report the magnitude.
        Ok(op.source_current("VOUT").unwrap_or(0.0).abs())
    }

    /// Static power drawn from VDD with the switch on, watts.
    ///
    /// # Errors
    /// Propagates solver failures.
    pub fn supply_power(&self, vdd: f64) -> Result<f64> {
        let mut net = Netlist::new();
        let nodes = self.build(&mut net, "drv")?;
        net.vsource("VDD", nodes.vdd, Netlist::GROUND, Waveform::Dc(vdd))?;
        net.vsource("VCTL", nodes.ctrl, Netlist::GROUND, Waveform::Dc(vdd))?;
        net.vsource(
            "VOUT",
            nodes.out,
            Netlist::GROUND,
            Waveform::Dc(self.out_bias),
        )?;
        let op = net.compile()?.op(&SolveOptions::default())?;
        // VDD sources current into the circuit: branch current is negative
        // (flows n→p internally); consumption is its magnitude times VDD.
        // The output branch is powered by VOUT (standing in for the
        // neuron), so only the VDD branch counts as driver power.
        Ok(op.source_current("VDD").unwrap_or(0.0).abs() * vdd)
    }

    /// Transient output-current waveform with a pulsed control input,
    /// demonstrating spike gating. Returns `(times, i_out)` where `i_out`
    /// is the current sunk from the output terminal.
    ///
    /// # Errors
    /// Propagates solver failures.
    pub fn output_waveform(
        &self,
        vdd: f64,
        ctrl: Waveform,
        tstop: f64,
        dt: f64,
    ) -> Result<(Vec<f64>, Vec<f64>)> {
        let mut net = Netlist::new();
        let nodes = self.build(&mut net, "drv")?;
        net.vsource("VDD", nodes.vdd, Netlist::GROUND, Waveform::Dc(vdd))?;
        net.vsource("VCTL", nodes.ctrl, Netlist::GROUND, ctrl)?;
        net.vsource(
            "VOUT",
            nodes.out,
            Netlist::GROUND,
            Waveform::Dc(self.out_bias),
        )?;
        let res = net.compile()?.tran(&TranSpec::new(tstop, dt))?;
        let i: Vec<f64> = res
            .source_current("VOUT")
            .unwrap()
            .into_iter()
            .map(f64::abs)
            .collect();
        Ok((res.times().to_vec(), i))
    }

    /// Returns a copy with `r1` re-solved (by bisection) so that the output
    /// amplitude at VDD = 1 V equals `target` amperes.
    ///
    /// # Errors
    /// Propagates solver failures from the underlying operating points.
    ///
    /// # Panics
    /// Panics if `target` is not positive.
    pub fn calibrated(mut self, target: f64) -> Result<CurrentDriver> {
        assert!(target > 0.0, "target current must be positive");
        let (mut lo, mut hi) = (0.2 * MEGA, 20.0 * MEGA);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            self.r1 = mid;
            let amp = self.output_amplitude(1.0)?;
            // Larger R1 => smaller current.
            if amp > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(self)
    }
}

/// The robust op-amp current driver (paper Fig. 9b defense).
#[derive(Debug, Clone, PartialEq)]
pub struct RobustCurrentDriver {
    /// Current-setting resistor; output amplitude = `vref/r1`.
    pub r1: f64,
    /// Bandgap reference providing VRef.
    pub reference: BandgapReference,
    /// Mirror PMOS width, meters.
    pub w_mirror: f64,
    /// Mirror PMOS length, meters — deliberately long (10× minimum) to
    /// suppress channel-length modulation, as the paper prescribes.
    pub l_mirror: f64,
    /// Op-amp transconductance, siemens.
    pub opamp_gm: f64,
    /// Op-amp output resistance, ohms (gain = gm·rout).
    pub opamp_rout: f64,
    /// Op-amp bias current charged to the driver's power budget, amperes.
    /// (The op-amp itself is behavioural, so its supply draw is accounted
    /// explicitly.)
    pub opamp_bias_current: f64,
    /// Output measurement bias, volts.
    pub out_bias: f64,
    /// PMOS model card.
    pub pmos: MosModel,
}

impl Default for RobustCurrentDriver {
    fn default() -> RobustCurrentDriver {
        RobustCurrentDriver {
            r1: 2.5 * MEGA,
            reference: BandgapReference::new(0.5),
            w_mirror: 10.0 * MICRO,
            l_mirror: 650.0 * NANO,
            opamp_gm: 1.0e-3,
            opamp_rout: 5.0e5,
            opamp_bias_current: 10.0 * NANO,
            out_bias: 0.5,
            pmos: MosModel::ptm65_pmos(),
        }
    }
}

impl RobustCurrentDriver {
    /// Adds the driver to `net` with namespaced element names.
    ///
    /// Returns `(vdd, out)` node handles. The op-amp is modelled as a
    /// transconductance into an output resistance (gain ≈ 500), which is
    /// plenty: a 2.5 mV input-referred error changes the 200 nA output by
    /// only ≈1 nA.
    ///
    /// # Errors
    /// Propagates netlist construction errors.
    pub fn build(
        &self,
        net: &mut Netlist,
        prefix: &str,
        vdd_value: f64,
    ) -> Result<(NodeId, NodeId)> {
        let gnd = Netlist::GROUND;
        let vdd = net.node(&format!("{prefix}_vdd"));
        let out = net.node(&format!("{prefix}_out"));
        let x = net.node(&format!("{prefix}_x"));
        let gate = net.node(&format!("{prefix}_gate"));
        let vref = net.node(&format!("{prefix}_vref"));

        net.vsource(
            &format!("{prefix}_VREF"),
            vref,
            gnd,
            Waveform::Dc(self.reference.output(vdd_value)),
        )?;
        net.resistor(&format!("{prefix}_R1"), x, gnd, self.r1)?;
        // Op-amp: in+ = x, in− = vref, output node = gate.
        // v(gate) = gm·rout·(v(x) − vref): rising x raises the PMOS gate,
        // reducing its current — negative feedback.
        net.vccs(&format!("{prefix}_GOP"), gnd, gate, x, vref, self.opamp_gm)?;
        net.resistor(&format!("{prefix}_ROP"), gate, gnd, self.opamp_rout)?;
        net.capacitor(&format!("{prefix}_CC"), gate, gnd, 1.0e-12)?;
        net.mosfet(
            &format!("{prefix}_MP1"),
            x,
            gate,
            vdd,
            vdd,
            self.pmos.clone(),
            self.w_mirror,
            self.l_mirror,
        )?;
        net.mosfet(
            &format!("{prefix}_MP2"),
            out,
            gate,
            vdd,
            vdd,
            self.pmos.clone(),
            self.w_mirror,
            self.l_mirror,
        )?;
        Ok((vdd, out))
    }

    /// DC output-current amplitude at the given supply voltage, amperes.
    ///
    /// # Errors
    /// Propagates solver failures.
    pub fn output_amplitude(&self, vdd: f64) -> Result<f64> {
        let mut net = Netlist::new();
        let (vdd_node, out) = self.build(&mut net, "rdrv", vdd)?;
        net.vsource("VDD", vdd_node, Netlist::GROUND, Waveform::Dc(vdd))?;
        net.vsource("VOUT", out, Netlist::GROUND, Waveform::Dc(self.out_bias))?;
        let op = net.compile()?.op(&SolveOptions::default())?;
        Ok(op.source_current("VOUT").unwrap_or(0.0).abs())
    }

    /// Static *overhead* power of the driver (reference-generation branch
    /// plus the accounted op-amp bias), watts.
    ///
    /// The output branch carries the useful 200 nA delivered to the neuron
    /// — identical in the unsecured and robust designs — so it is excluded
    /// from the overhead comparison: here the VDD branch feeds both the
    /// MP1 reference leg and the MP2 output leg, and the output leg's
    /// current (measured at the VOUT bias source) is subtracted back out.
    ///
    /// # Errors
    /// Propagates solver failures.
    pub fn supply_power(&self, vdd: f64) -> Result<f64> {
        let mut net = Netlist::new();
        let (vdd_node, out) = self.build(&mut net, "rdrv", vdd)?;
        net.vsource("VDD", vdd_node, Netlist::GROUND, Waveform::Dc(vdd))?;
        net.vsource("VOUT", out, Netlist::GROUND, Waveform::Dc(self.out_bias))?;
        let op = net.compile()?.op(&SolveOptions::default())?;
        let total = op.source_current("VDD").unwrap_or(0.0).abs();
        let delivered = op.source_current("VOUT").unwrap_or(0.0).abs();
        Ok((total - delivered + self.opamp_bias_current) * vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_amplitude_near_200na() {
        let amp = CurrentDriver::default().output_amplitude(1.0).unwrap();
        assert!(
            (amp - 200.0e-9).abs() < 20.0e-9,
            "amplitude {amp:.3e} should be within 10% of 200 nA"
        );
    }

    #[test]
    fn amplitude_tracks_vdd_like_paper_fig5b() {
        let drv = CurrentDriver::default();
        let nominal = drv.output_amplitude(1.0).unwrap();
        let low = drv.output_amplitude(0.8).unwrap();
        let high = drv.output_amplitude(1.2).unwrap();
        let low_pct = (low - nominal) / nominal * 100.0;
        let high_pct = (high - nominal) / nominal * 100.0;
        // Paper: −32% at 0.8 V, +32% at 1.2 V. Allow a generous band; the
        // shape (symmetric, ~±30%) is what matters.
        assert!(low_pct < -24.0 && low_pct > -42.0, "low {low_pct:.1}%");
        assert!(high_pct > 24.0 && high_pct < 42.0, "high {high_pct:.1}%");
    }

    #[test]
    fn amplitude_is_monotone_in_vdd() {
        let drv = CurrentDriver::default();
        let mut prev = 0.0;
        for vdd in [0.8, 0.9, 1.0, 1.1, 1.2] {
            let amp = drv.output_amplitude(vdd).unwrap();
            assert!(amp > prev, "amplitude must rise with VDD");
            prev = amp;
        }
    }

    #[test]
    fn switch_gates_the_output() {
        // With ctrl low the driver must deliver (almost) no current.
        let drv = CurrentDriver::default();
        let mut net = Netlist::new();
        let nodes = drv.build(&mut net, "drv").unwrap();
        net.vsource("VDD", nodes.vdd, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        net.vsource("VCTL", nodes.ctrl, Netlist::GROUND, Waveform::Dc(0.0))
            .unwrap();
        net.vsource("VOUT", nodes.out, Netlist::GROUND, Waveform::Dc(0.5))
            .unwrap();
        let op = net.compile().unwrap().op(&Default::default()).unwrap();
        let off = op.source_current("VOUT").unwrap().abs();
        assert!(off < 2.0e-9, "off-state leakage {off:.2e} too large");
    }

    #[test]
    fn transient_pulses_are_gated() {
        let drv = CurrentDriver::default();
        let ctrl = Waveform::spike_train(1.0, 25.0e-9, 50.0e-9, 10.0e-9);
        let (t, i) = drv.output_waveform(1.0, ctrl, 200.0e-9, 1.0e-9).unwrap();
        let peak = neurofi_spice::measure::maximum(&i);
        assert!(peak > 150.0e-9, "peak {peak:.2e}");
        // Before the first pulse the output is quiet.
        let early = neurofi_spice::measure::average_in(&t, &i, 0.0, 8.0e-9).unwrap();
        assert!(early < 10.0e-9);
    }

    #[test]
    fn calibration_hits_target() {
        let drv = CurrentDriver::default().calibrated(150.0e-9).unwrap();
        let amp = drv.output_amplitude(1.0).unwrap();
        assert!((amp - 150.0e-9).abs() < 2.0e-9, "calibrated {amp:.3e}");
    }

    #[test]
    fn robust_driver_nominal_amplitude() {
        let drv = RobustCurrentDriver::default();
        let amp = drv.output_amplitude(1.0).unwrap();
        // vref/r1 = 0.5 / 2.5 MΩ = 200 nA.
        assert!((amp - 200.0e-9).abs() < 10.0e-9, "amp {amp:.3e}");
    }

    #[test]
    fn robust_driver_is_flat_across_vdd() {
        let drv = RobustCurrentDriver::default();
        let nominal = drv.output_amplitude(1.0).unwrap();
        for vdd in [0.8, 0.9, 1.1, 1.2] {
            let amp = drv.output_amplitude(vdd).unwrap();
            let pct = (amp - nominal) / nominal * 100.0;
            assert!(
                pct.abs() < 2.0,
                "robust driver moved {pct:.2}% at vdd={vdd}"
            );
        }
    }

    #[test]
    fn robust_driver_beats_unsecured_by_an_order_of_magnitude() {
        let unsec = CurrentDriver::default();
        let robust = RobustCurrentDriver::default();
        let spread = |amps: &[f64]| {
            let max = amps.iter().cloned().fold(f64::MIN, f64::max);
            let min = amps.iter().cloned().fold(f64::MAX, f64::min);
            (max - min) / amps[1]
        };
        let vdds = [0.8, 1.0, 1.2];
        let unsec_amps: Vec<f64> = vdds
            .iter()
            .map(|&v| unsec.output_amplitude(v).unwrap())
            .collect();
        let robust_amps: Vec<f64> = vdds
            .iter()
            .map(|&v| robust.output_amplitude(v).unwrap())
            .collect();
        assert!(spread(&robust_amps) < spread(&unsec_amps) / 10.0);
    }

    #[test]
    fn power_overhead_is_small() {
        // Both numbers are reference-branch powers: the unsecured driver's
        // VDD branch feeds only R1/MN2, and the robust driver's accounting
        // excludes the delivered output current (see `supply_power`).
        let unsec = CurrentDriver::default().supply_power(1.0).unwrap();
        let robust = RobustCurrentDriver::default().supply_power(1.0).unwrap();
        let overhead = (robust - unsec) / unsec;
        // Paper reports 3%; accept anything modest.
        assert!(
            overhead > -0.10 && overhead < 0.25,
            "overhead {:.1}% out of band",
            overhead * 100.0
        );
    }
}
