//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this workspace vendors
//! a small, deterministic implementation of the proptest API it uses:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//! * range strategies (`1usize..40`, `0.0f64..=1.0`, ...),
//! * [`prelude::any`] for integers and `bool`,
//! * [`collection::vec`] with fixed or ranged sizes,
//! * tuple strategies,
//! * a `"[class]{lo,hi}"` string-pattern strategy subset,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! inputs via `Debug` in the panic message instead. Cases are generated
//! from a per-test deterministic seed, so failures reproduce exactly.

#![deny(missing_docs)]

use std::fmt;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion (returned by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from a test name (stable across runs).
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name gives a stable per-test stream.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}

/// A generator of test-case inputs.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )+};
}
float_strategy!(f32, f64);

/// Types with a full-domain default strategy (see [`prelude::any`]).
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`prelude::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
}

/// String-pattern strategy: supports the `"[class]{lo,hi}"` subset
/// (character classes with ranges and literals, and a length repetition),
/// which is the only regex form this workspace uses.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern strategy: {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[chars]{lo,hi}` into (alphabet, lo, hi). Returns `None` for
/// anything outside that subset.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                alphabet.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual proptest import surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// The default full-domain strategy for `T`.
    pub fn any<T: crate::Arbitrary>() -> crate::Any<T> {
        crate::Any(core::marker::PhantomData)
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                        $(&$arg),+
                    );
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err,
                            inputs
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a proptest body, reporting the failing
/// inputs instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn class_pattern_parsing() {
        let (alphabet, lo, hi) = super::parse_class_pattern("[a-c,x]{0,8}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c', ',', 'x']);
        assert_eq!((lo, hi), (0, 8));
        assert!(super::parse_class_pattern("plain").is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in -1.5f64..=2.5) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-1.5..=2.5).contains(&x));
        }

        #[test]
        fn vecs_honour_sizes(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for item in &v {
                prop_assert!(*item < 10);
            }
        }

        #[test]
        fn tuples_and_any(pair in (crate::collection::vec(any::<u8>(), 4), 0u8..10)) {
            prop_assert_eq!(pair.0.len(), 4);
            prop_assert!(pair.1 < 10);
        }

        #[test]
        fn string_patterns_match_class(s in "[a-z]{0,8}") {
            prop_assert!(s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
