//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the small slice of `rand`'s 0.8 API that it actually uses:
//! [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`], [`Rng::gen`] /
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 core of the real `StdRng`, so streams differ from upstream
//! `rand`, but every consumer in this workspace only requires a seeded,
//! deterministic, statistically solid source. Determinism is preserved
//! across runs and platforms.

#![deny(missing_docs)]

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce (a uniform "standard" sample).
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`
    /// (`[0, 1)` for floats, full range for integers).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 high bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    };
}
float_range!(f32);
float_range!(f64);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    };
}
int_range!(u8);
int_range!(u16);
int_range!(u32);
int_range!(u64);
int_range!(usize);

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a standard sample (`[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's seeded generator: xoshiro256++ with SplitMix64
    /// seed expansion (deterministic, fast, passes BigCrush).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates), the only `seq` API this
    /// workspace uses.
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&x));
            let k = rng.gen_range(2usize..10);
            assert!((2..10).contains(&k));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, original, "shuffle left 50 elements untouched");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }
}
