//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this workspace vendors
//! a compact wall-clock benchmarking harness exposing the criterion API
//! its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`criterion_group!`], [`criterion_main!`],
//! [`BatchSize`], and [`black_box`].
//!
//! Methodology: each routine is warmed up, then timed over enough
//! iterations to fill a measurement window; the harness reports the mean
//! and best ns/iter over several samples. There is no statistical
//! regression machinery — the numbers are for human comparison and for
//! the machine-readable dumps produced by the `repro` binary.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted for API
/// compatibility; this harness always times per-invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// Timing statistics for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Mean nanoseconds per iteration over all samples.
    pub mean_ns: f64,
    /// Fastest sample's nanoseconds per iteration.
    pub best_ns: f64,
    /// Total iterations timed.
    pub iterations: u64,
}

/// Per-benchmark measurement driver, handed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    result: Option<Sample>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            result: None,
        }
    }

    /// Times `routine` and records the statistics.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and calibration: find an iteration count that fills
        // the per-sample window.
        let warmup = Duration::from_millis(30);
        let window = Duration::from_millis(60);
        let start = Instant::now();
        let mut calib_iters = 0u64;
        while start.elapsed() < warmup {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = warmup.as_secs_f64() / calib_iters.max(1) as f64;
        let iters_per_sample = ((window.as_secs_f64() / per_iter) as u64).clamp(1, 1_000_000_000);

        let mut total_ns = 0.0f64;
        let mut best_ns = f64::INFINITY;
        let mut iterations = 0u64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            total_ns += ns * iters_per_sample as f64;
            best_ns = best_ns.min(ns);
            iterations += iters_per_sample;
        }
        self.result = Some(Sample {
            mean_ns: total_ns / iterations.max(1) as f64,
            best_ns,
            iterations,
        });
    }

    /// Times `routine` over fresh inputs from `setup`, excluding the
    /// setup cost from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut timed_ns = 0.0f64;
        let mut best_ns = f64::INFINITY;
        let mut iterations = 0u64;
        let window = Duration::from_millis(60);
        // Warm up once so lazily-initialised state does not pollute the
        // first sample.
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let mut sample_ns = 0.0f64;
            let mut sample_iters = 0u64;
            let sample_start = Instant::now();
            while sample_start.elapsed() < window {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                sample_ns += t0.elapsed().as_nanos() as f64;
                sample_iters += 1;
            }
            timed_ns += sample_ns;
            iterations += sample_iters;
            best_ns = best_ns.min(sample_ns / sample_iters.max(1) as f64);
        }
        self.result = Some(Sample {
            mean_ns: timed_ns / iterations.max(1) as f64,
            best_ns,
            iterations,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1.0e9 {
        format!("{:.3} s", ns / 1.0e9)
    } else if ns >= 1.0e6 {
        format!("{:.3} ms", ns / 1.0e6)
    } else if ns >= 1.0e3 {
        format!("{:.3} µs", ns / 1.0e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(samples);
    f(&mut bencher);
    match bencher.result {
        Some(s) => println!(
            "{name:<44} mean {:>12}/iter  best {:>12}/iter  ({} iters)",
            format_ns(s.mean_ns),
            format_ns(s.best_ns),
            s.iterations
        ),
        None => println!("{name:<44} (no measurement recorded)"),
    }
}

/// The benchmark registry/driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_one(name, 5, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: 5,
        }
    }
}

/// A named benchmark group (`sample_size` maps onto the number of timing
/// samples taken).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(2, 100);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(
            &format!("{}/{name}", self.name),
            self.samples.min(10),
            &mut f,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a function running the given benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; they are
            // irrelevant to this harness.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_prints() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher::new(2);
        b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.result.is_some());
    }
}
