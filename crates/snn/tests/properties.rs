//! Property-based tests of the behavioural SNN substrate.

use proptest::prelude::*;

use neurofi_snn::neurons::{LifLayer, LifParameters};
use neurofi_snn::tensor::Matrix;
use neurofi_snn::topology::{DenseConnection, LateralInhibition, OneToOneConnection};
use neurofi_snn::PoissonEncoder;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Column normalisation always hits its target for strictly positive
    /// matrices of any shape.
    #[test]
    fn normalization_reaches_target(
        rows in 1usize..40,
        cols in 1usize..20,
        target in 0.1f32..100.0,
        seed in any::<u32>(),
    ) {
        let mut state = seed as u64 | 1;
        let mut m = Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 40) as f32 / (1u64 << 24) as f32) + 0.01
        });
        m.normalize_columns(target);
        for s in m.column_sums() {
            prop_assert!((s - target).abs() < 1e-3 * target, "{s} vs {target}");
        }
    }

    /// Membrane potential can never exceed the effective threshold after
    /// a step (it either stays below or the neuron fired and reset).
    ///
    /// The threshold-scale range is restricted to keep the effective
    /// threshold above the reset potential: beyond ≈1.15 the neuron
    /// enters the self-oscillation regime (reset ≥ threshold) that the
    /// paper's "+20%" attacks exploit, where this invariant genuinely
    /// does not hold.
    #[test]
    fn membrane_respects_threshold(
        drive in 0.0f32..30.0,
        steps in 1usize..200,
        scale in 0.5f32..1.1,
    ) {
        let mut layer = LifLayer::new(1, LifParameters::diehl_cook_excitatory(), 1.0);
        layer.threshold_scale[0] = scale;
        for _ in 0..steps {
            layer.step(&[drive]);
            if layer.spikes[0] == 0.0 {
                prop_assert!(layer.v[0] < layer.effective_threshold(0));
            } else {
                prop_assert_eq!(layer.v[0], layer.params().v_reset);
            }
        }
    }

    /// Poisson rates concentrate around pixel/255 · max_rate for any
    /// pixel value.
    #[test]
    fn poisson_rate_concentrates(pixel in 1u8..=255) {
        let mut enc = PoissonEncoder::new(128.0, 1.0, 7);
        let image = vec![pixel; 64];
        let steps = 3000;
        let mut count = 0u64;
        let mut buf = vec![0.0f32; 64];
        for _ in 0..steps {
            enc.encode_step_into(&image, &mut buf);
            count += buf.iter().filter(|&&s| s > 0.0).count() as u64;
        }
        let p_hat = count as f64 / (steps as f64 * 64.0);
        let p = pixel as f64 / 255.0 * 0.128;
        // Binomial concentration: 5 sigma over 192k draws.
        let sigma = (p * (1.0 - p) / (steps as f64 * 64.0)).sqrt();
        prop_assert!(
            (p_hat - p).abs() < 5.0 * sigma + 1e-4,
            "p_hat {p_hat} vs p {p}"
        );
    }

    /// Dense forward propagation is linear in the gain hook.
    #[test]
    fn dense_gain_is_linear(gain in 0.1f32..3.0, seed in any::<u64>()) {
        let conn = DenseConnection::random(30, 10, 0.3, 0.0, 1.0, seed);
        let spikes: Vec<f32> = (0..30).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();
        let mut base = vec![0.0f32; 10];
        conn.forward_into(&spikes, &mut base);
        let mut scaled_conn = conn.clone();
        scaled_conn.gain = gain;
        let mut scaled = vec![0.0f32; 10];
        scaled_conn.forward_into(&spikes, &mut scaled);
        for (b, s) in base.iter().zip(&scaled) {
            prop_assert!((s - b * gain).abs() < 1e-4, "{s} vs {}", b * gain);
        }
    }

    /// Lateral inhibition conserves the all-but-self sum: total delivered
    /// inhibition equals weight · spikes · (n − 1).
    #[test]
    fn lateral_inhibition_mass_balance(
        n in 2usize..50,
        firing in 0usize..10,
    ) {
        let conn = LateralInhibition::new(n, -7.0);
        let firing = firing.min(n);
        let spikes: Vec<f32> = (0..n).map(|i| if i < firing { 1.0 } else { 0.0 }).collect();
        let mut out = vec![0.0f32; n];
        conn.forward_into(&spikes, &mut out);
        let total: f32 = out.iter().sum();
        let expect = -7.0 * (firing as f32) * (n as f32 - 1.0);
        prop_assert!((total - expect).abs() < 1e-3 * expect.abs().max(1.0));
    }

    /// One-to-one connections never mix channels.
    #[test]
    fn one_to_one_is_diagonal(n in 1usize..60, hot in 0usize..60) {
        let hot = hot.min(n - 1);
        let conn = OneToOneConnection::new(n, 22.5);
        let mut spikes = vec![0.0f32; n];
        spikes[hot] = 1.0;
        let mut out = vec![0.0f32; n];
        conn.forward_into(&spikes, &mut out);
        for (i, &o) in out.iter().enumerate() {
            if i == hot {
                prop_assert_eq!(o, 22.5);
            } else {
                prop_assert_eq!(o, 0.0);
            }
        }
    }

    /// Refractory periods are honoured exactly: after any spike the
    /// neuron is silent for ceil(refractory/dt) steps no matter the drive.
    #[test]
    fn refractory_is_absolute(drive in 5.0f32..100.0) {
        let params = LifParameters::diehl_cook_excitatory();
        let refrac_steps = params.refractory_ms as usize;
        let mut layer = LifLayer::new(1, params, 1.0);
        let mut last_spike: Option<usize> = None;
        for step in 0..100 {
            layer.step(&[drive]);
            if layer.spikes[0] > 0.0 {
                if let Some(prev) = last_spike {
                    prop_assert!(step - prev > refrac_steps, "spikes {prev} and {step}");
                }
                last_spike = Some(step);
            }
        }
    }
}
