//! Calibration sweep for the Diehl&Cook operating point (developer tool).
//!
//! Searches max input rate × theta_plus for a healthy baseline with
//! evaluation-frozen adaptation, then reports activity and accuracy.
use neurofi_data::SynthDigits;
use neurofi_snn::diehl_cook::{DiehlCook2015, DiehlCookConfig};
use neurofi_snn::trainer::{evaluate, train, TrainOptions};

fn main() {
    let generator = SynthDigits::default();
    let train_data = generator.generate(1000, 1001);
    let test_data = generator.generate(250, 2002);
    for (rate, theta_plus) in [
        (128.0, 0.05),
        (64.0, 0.05),
        (32.0, 0.05),
        (128.0, 0.01),
        (64.0, 0.01),
        (128.0, 0.2),
        (64.0, 0.2),
    ] {
        let mut config = DiehlCookConfig {
            max_rate_hz: rate,
            ..Default::default()
        };
        config.excitatory.theta_plus = theta_plus;
        let mut net = DiehlCook2015::new(config, 42);
        let t0 = std::time::Instant::now();
        let report = train(&mut net, &train_data, &TrainOptions::default());
        let accuracy = evaluate(&mut net, &report.assignments, &test_data, 10);
        let theta_max = net.excitatory.theta.iter().cloned().fold(0.0f32, f32::max);
        println!(
            "rate={rate:>5} theta+={theta_plus:<5} acc={:.1}% act={:.0} theta_max={theta_max:.1}mV online={:?} ({:?})",
            accuracy * 100.0,
            report.mean_activity,
            report
                .online_accuracy
                .iter()
                .map(|a| format!("{:.0}%", a * 100.0))
                .collect::<Vec<_>>(),
            t0.elapsed()
        );
    }
}
