//! Spike encoders: pixel intensities → spike trains.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Poisson rate encoder, matching BindsNET's `PoissonEncoder` semantics:
/// a pixel of value 255 fires at `max_rate_hz`; each simulation step emits
/// a Bernoulli spike with probability `rate · dt`.
///
/// ```
/// use neurofi_snn::PoissonEncoder;
/// let mut enc = PoissonEncoder::new(128.0, 1.0, 7);
/// let image = vec![255u8; 100];
/// let spikes = enc.encode_step(&image);
/// let fired = spikes.iter().filter(|&&s| s > 0.0).count();
/// assert!(fired > 0); // 12.8% per-step probability over 100 pixels
/// ```
#[derive(Debug, Clone)]
pub struct PoissonEncoder {
    /// Firing rate of a fully-bright pixel, hertz.
    pub max_rate_hz: f64,
    /// Simulation step, milliseconds.
    pub dt_ms: f64,
    rng: StdRng,
}

impl PoissonEncoder {
    /// Creates an encoder with the given peak rate and time step.
    ///
    /// # Panics
    /// Panics if `max_rate_hz` is negative, or if the per-step spike
    /// probability `max_rate_hz · dt` exceeds 1.
    pub fn new(max_rate_hz: f64, dt_ms: f64, seed: u64) -> PoissonEncoder {
        assert!(max_rate_hz >= 0.0, "rate must be non-negative");
        assert!(dt_ms > 0.0, "dt must be positive");
        assert!(
            max_rate_hz * dt_ms / 1000.0 <= 1.0,
            "per-step spike probability exceeds 1 (rate {max_rate_hz} Hz at dt {dt_ms} ms)"
        );
        PoissonEncoder {
            max_rate_hz,
            dt_ms,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Re-seeds the encoder (used to make every sample reproducible).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Emits one time step of spikes (1.0 = spike) for the given image.
    pub fn encode_step(&mut self, image: &[u8]) -> Vec<f32> {
        let mut out = vec![0.0f32; image.len()];
        self.encode_step_into(image, &mut out);
        out
    }

    /// Same as [`encode_step`](PoissonEncoder::encode_step) but reuses a
    /// caller buffer.
    ///
    /// # Panics
    /// Panics if `out.len() != image.len()`.
    pub fn encode_step_into(&mut self, image: &[u8], out: &mut [f32]) {
        assert_eq!(out.len(), image.len(), "buffer length mismatch");
        let scale = self.max_rate_hz * self.dt_ms / 1000.0 / 255.0;
        for (o, &pixel) in out.iter_mut().zip(image) {
            let p = pixel as f64 * scale;
            *o = if pixel > 0 && self.rng.gen::<f64>() < p {
                1.0
            } else {
                0.0
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_rate_matches_pixel_value() {
        let mut enc = PoissonEncoder::new(128.0, 1.0, 3);
        let image = vec![255u8, 128, 0];
        let steps = 20_000;
        let mut counts = [0usize; 3];
        let mut buffer = vec![0.0f32; 3];
        for _ in 0..steps {
            enc.encode_step_into(&image, &mut buffer);
            for (c, &s) in counts.iter_mut().zip(&buffer) {
                if s > 0.0 {
                    *c += 1;
                }
            }
        }
        let rate = |c: usize| c as f64 / steps as f64 * 1000.0; // Hz at dt=1ms
        assert!((rate(counts[0]) - 128.0).abs() < 8.0, "{}", rate(counts[0]));
        assert!((rate(counts[1]) - 64.0).abs() < 6.0, "{}", rate(counts[1]));
        assert_eq!(counts[2], 0, "zero pixels must never spike");
    }

    #[test]
    fn deterministic_for_seed() {
        let image = vec![200u8; 50];
        let mut a = PoissonEncoder::new(100.0, 1.0, 5);
        let mut b = PoissonEncoder::new(100.0, 1.0, 5);
        for _ in 0..10 {
            assert_eq!(a.encode_step(&image), b.encode_step(&image));
        }
    }

    #[test]
    fn reseed_restarts_stream() {
        let image = vec![200u8; 50];
        let mut enc = PoissonEncoder::new(100.0, 1.0, 5);
        let first = enc.encode_step(&image);
        enc.encode_step(&image);
        enc.reseed(5);
        assert_eq!(enc.encode_step(&image), first);
    }

    #[test]
    #[should_panic(expected = "probability exceeds 1")]
    fn rejects_overdriven_rate() {
        PoissonEncoder::new(2000.0, 1.0, 0);
    }
}
