//! Neuron layer models: leaky integrate-and-fire, with and without the
//! Diehl&Cook adaptive threshold.
//!
//! Conventions follow BindsNET (and through it, the paper): voltages in
//! millivolts on the biological scale (rest −65 mV, thresholds negative),
//! time in milliseconds, synchronous update (all layers step on the
//! spikes of the previous step).
//!
//! ## Fault hooks
//!
//! The attack models in `neurofi-core` manipulate two pieces of state:
//! [`LifLayer::threshold_scale`] (per-neuron multiplicative threshold
//! fault — note it scales the *signed* threshold, matching the paper's
//! methodology; see DESIGN.md) and [`LifLayer::input_gain`] (membrane
//! voltage change per input spike, the paper's `theta` knob of Attack 1).

use crate::tensor::decay;

/// Parameters of a LIF population.
#[derive(Debug, Clone, PartialEq)]
pub struct LifParameters {
    /// Resting potential, mV.
    pub v_rest: f32,
    /// Post-spike reset potential, mV.
    pub v_reset: f32,
    /// Firing threshold, mV (negative, biological convention).
    pub v_thresh: f32,
    /// Membrane time constant, ms.
    pub tau_m: f32,
    /// Absolute refractory period, ms.
    pub refractory_ms: f32,
    /// Synaptic-trace time constant, ms (for STDP).
    pub tau_trace: f32,
    /// Adaptive-threshold increment per spike, mV (0 disables adaptation).
    pub theta_plus: f32,
    /// Adaptive-threshold decay time constant, ms (ignored when
    /// `theta_plus == 0`; Diehl&Cook uses 10⁷ ms — effectively static
    /// within one experiment).
    pub tau_theta: f32,
}

impl LifParameters {
    /// The Diehl&Cook excitatory population (BindsNET `DiehlAndCookNodes`):
    /// rest −65 mV, reset −60 mV, threshold −52 mV + adaptive theta.
    pub fn diehl_cook_excitatory() -> LifParameters {
        LifParameters {
            v_rest: -65.0,
            v_reset: -60.0,
            v_thresh: -52.0,
            tau_m: 100.0,
            refractory_ms: 5.0,
            tau_trace: 20.0,
            theta_plus: 0.05,
            tau_theta: 1.0e7,
        }
    }

    /// The Diehl&Cook inhibitory population (BindsNET `LIFNodes`):
    /// rest −60 mV, reset −45 mV, threshold −40 mV, fast membrane.
    pub fn diehl_cook_inhibitory() -> LifParameters {
        LifParameters {
            v_rest: -60.0,
            v_reset: -45.0,
            v_thresh: -40.0,
            tau_m: 10.0,
            refractory_ms: 2.0,
            tau_trace: 20.0,
            theta_plus: 0.0,
            tau_theta: 1.0e7,
        }
    }
}

/// A population of LIF neurons (adaptive-threshold capable).
#[derive(Debug, Clone)]
pub struct LifLayer {
    params: LifParameters,
    dt_ms: f32,
    v_decay: f32,
    trace_decay: f32,
    theta_decay: f32,
    /// Membrane potentials, mV.
    pub v: Vec<f32>,
    /// Spike indicator from the most recent step (1.0 = spiked).
    pub spikes: Vec<f32>,
    /// Synaptic traces (decaying spike memory for STDP).
    pub traces: Vec<f32>,
    /// Adaptive threshold increments, mV (all zeros when disabled).
    pub theta: Vec<f32>,
    /// Remaining refractory time per neuron, ms.
    refractory_left: Vec<f32>,
    /// FAULT HOOK: per-neuron multiplicative factor on the signed firing
    /// threshold (1.0 = nominal). −20% threshold change ⇒ 0.8.
    pub threshold_scale: Vec<f32>,
    /// FAULT HOOK: scales the membrane-voltage change per unit of input
    /// (1.0 = nominal). The paper's Attack 1 sweeps this.
    pub input_gain: f32,
    /// When false, the adaptive threshold is frozen (no decay, no
    /// per-spike increment) — evaluation mode, mirroring BindsNET's
    /// `train(False)`.
    pub adaptation_enabled: bool,
}

impl LifLayer {
    /// Creates a population of `n` neurons at rest.
    ///
    /// # Panics
    /// Panics if `n` is zero or `dt_ms` is not positive.
    pub fn new(n: usize, params: LifParameters, dt_ms: f32) -> LifLayer {
        assert!(n > 0, "layer must contain at least one neuron");
        assert!(dt_ms > 0.0, "dt must be positive");
        LifLayer {
            v_decay: (-dt_ms / params.tau_m).exp(),
            trace_decay: (-dt_ms / params.tau_trace).exp(),
            theta_decay: (-dt_ms / params.tau_theta).exp(),
            dt_ms,
            v: vec![params.v_rest; n],
            spikes: vec![0.0; n],
            traces: vec![0.0; n],
            theta: vec![0.0; n],
            refractory_left: vec![0.0; n],
            threshold_scale: vec![1.0; n],
            input_gain: 1.0,
            adaptation_enabled: true,
            params,
        }
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// True when the layer is empty (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// The layer parameters.
    pub fn params(&self) -> &LifParameters {
        &self.params
    }

    /// The effective firing threshold of neuron `i`, including the fault
    /// scale and adaptive theta, mV.
    #[inline]
    pub fn effective_threshold(&self, i: usize) -> f32 {
        self.params.v_thresh * self.threshold_scale[i] + self.theta[i]
    }

    /// Advances the population one step with the given per-neuron input
    /// currents (mV of membrane change per step at `input_gain = 1`).
    ///
    /// # Panics
    /// Panics if `input.len() != len()`.
    pub fn step(&mut self, input: &[f32]) {
        assert_eq!(input.len(), self.len(), "input length mismatch");
        let p = &self.params;
        // Decay stays in dedicated passes: they auto-vectorise, unlike the
        // branchy membrane loop below (refractory skips, spike resets).
        decay(&mut self.traces, self.trace_decay);
        let adapt = p.theta_plus != 0.0 && self.adaptation_enabled;
        if adapt {
            decay(&mut self.theta, self.theta_decay);
        }
        // The membrane loop walks five parallel arrays; indexing beats a
        // five-way zip for clarity here.
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.v.len() {
            self.spikes[i] = 0.0;
            if self.refractory_left[i] > 0.0 {
                self.refractory_left[i] -= self.dt_ms;
                continue;
            }
            // Leak toward rest, then integrate input.
            self.v[i] =
                p.v_rest + (self.v[i] - p.v_rest) * self.v_decay + input[i] * self.input_gain;
            if self.v[i] >= self.effective_threshold(i) {
                self.spikes[i] = 1.0;
                self.traces[i] = 1.0;
                self.v[i] = p.v_reset;
                self.refractory_left[i] = p.refractory_ms;
                if adapt {
                    self.theta[i] += p.theta_plus;
                }
            }
        }
    }

    /// Resets dynamic state (membrane, spikes, traces, refractory) while
    /// keeping learned theta and any injected faults — the between-samples
    /// reset of the Diehl&Cook protocol.
    pub fn reset_state(&mut self) {
        self.v.fill(self.params.v_rest);
        self.spikes.fill(0.0);
        self.traces.fill(0.0);
        self.refractory_left.fill(0.0);
    }

    /// Clears all fault hooks back to nominal.
    pub fn clear_faults(&mut self) {
        self.threshold_scale.fill(1.0);
        self.input_gain = 1.0;
    }
}

/// The input population: spikes are set externally by an encoder; the
/// layer only maintains STDP traces.
#[derive(Debug, Clone)]
pub struct InputLayer {
    trace_decay: f32,
    /// Spike indicator for the current step.
    pub spikes: Vec<f32>,
    /// Synaptic traces.
    pub traces: Vec<f32>,
}

impl InputLayer {
    /// Creates an input population of `n` channels.
    ///
    /// # Panics
    /// Panics if `n` is zero or parameters are non-positive.
    pub fn new(n: usize, tau_trace: f32, dt_ms: f32) -> InputLayer {
        assert!(n > 0, "layer must contain at least one neuron");
        assert!(
            tau_trace > 0.0 && dt_ms > 0.0,
            "time constants must be positive"
        );
        InputLayer {
            trace_decay: (-dt_ms / tau_trace).exp(),
            spikes: vec![0.0; n],
            traces: vec![0.0; n],
        }
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.spikes.len()
    }

    /// True when empty (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.spikes.is_empty()
    }

    /// Loads this step's spikes and updates traces.
    ///
    /// # Panics
    /// Panics if `spikes.len() != len()`.
    pub fn set_spikes(&mut self, spikes: &[f32]) {
        assert_eq!(spikes.len(), self.len(), "spike length mismatch");
        // Fused decay-and-load in one branch-free pass (the select
        // vectorises): traces of spiking channels reset to 1, the rest
        // decay — identical to a decay pass followed by spike loading.
        for ((trace, out), &s) in self.traces.iter_mut().zip(&mut self.spikes).zip(spikes) {
            *out = s;
            let decayed = *trace * self.trace_decay;
            *trace = if s > 0.0 { 1.0 } else { decayed };
        }
    }

    /// Clears spikes and traces.
    pub fn reset_state(&mut self) {
        self.spikes.fill(0.0);
        self.traces.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(n: usize) -> LifLayer {
        LifLayer::new(n, LifParameters::diehl_cook_excitatory(), 1.0)
    }

    #[test]
    fn integrates_and_fires() {
        let mut l = layer(1);
        let mut fired_at = None;
        for step in 0..100 {
            l.step(&[2.0]);
            if l.spikes[0] > 0.0 {
                fired_at = Some(step);
                break;
            }
        }
        // Needs 13 mV of depolarisation at ~2 mV/step (minus leak).
        let at = fired_at.expect("neuron should fire");
        assert!((5..=30).contains(&at), "fired at step {at}");
        assert_eq!(l.v[0], -60.0, "reset to v_reset");
    }

    #[test]
    fn subthreshold_input_never_fires() {
        let mut l = layer(1);
        for _ in 0..500 {
            l.step(&[0.1]);
        }
        assert_eq!(l.spikes[0], 0.0);
        // Settles at rest + input·tau/dt-ish equilibrium below threshold.
        assert!(l.v[0] < l.effective_threshold(0));
    }

    #[test]
    fn refractory_blocks_integration() {
        let mut l = layer(1);
        // Force a spike.
        while l.spikes[0] == 0.0 {
            l.step(&[5.0]);
        }
        let v_after = l.v[0];
        // During the 5 ms refractory period, input is ignored.
        for _ in 0..4 {
            l.step(&[100.0]);
            assert_eq!(l.spikes[0], 0.0, "spiked during refractory");
            assert_eq!(l.v[0], v_after, "membrane moved during refractory");
        }
    }

    #[test]
    fn theta_grows_with_spikes_and_raises_threshold() {
        let mut l = layer(1);
        let thr0 = l.effective_threshold(0);
        for _ in 0..200 {
            l.step(&[5.0]);
        }
        assert!(l.theta[0] > 0.0);
        assert!(l.effective_threshold(0) > thr0);
    }

    #[test]
    fn inhibitory_params_have_no_theta() {
        let mut l = LifLayer::new(1, LifParameters::diehl_cook_inhibitory(), 1.0);
        for _ in 0..100 {
            l.step(&[25.0]);
        }
        assert_eq!(l.theta[0], 0.0);
    }

    #[test]
    fn threshold_scale_semantics_match_paper() {
        // Thresholds are negative; scaling by 0.8 (a "−20% change") moves
        // them toward zero, making the neuron HARDER to fire.
        let mut nominal = layer(1);
        let mut attacked = layer(1);
        attacked.threshold_scale[0] = 0.8;
        assert!(attacked.effective_threshold(0) > nominal.effective_threshold(0));
        let fire_step = |l: &mut LifLayer| {
            l.reset_state();
            for step in 0..400 {
                l.step(&[1.0]);
                if l.spikes[0] > 0.0 {
                    return Some(step);
                }
            }
            None
        };
        let t_nom = fire_step(&mut nominal);
        let t_att = fire_step(&mut attacked);
        match (t_nom, t_att) {
            (Some(a), Some(b)) => assert!(b > a, "attacked must fire later ({a} vs {b})"),
            (Some(_), None) => {} // attacked silenced entirely: also valid
            other => panic!("unexpected firing pattern {other:?}"),
        }
    }

    #[test]
    fn scale_above_one_makes_firing_easier() {
        // +20% on a negative threshold moves it closer to rest.
        let mut boosted = layer(1);
        boosted.threshold_scale[0] = 1.2;
        assert!(boosted.effective_threshold(0) < layer(1).effective_threshold(0));
    }

    #[test]
    fn input_gain_scales_drive() {
        let mut weak = layer(1);
        weak.input_gain = 0.5;
        let mut strong = layer(1);
        strong.input_gain = 2.0;
        let mut strong_spiked = false;
        for _ in 0..20 {
            weak.step(&[1.0]);
            strong.step(&[1.0]);
            strong_spiked |= strong.spikes[0] > 0.0;
        }
        // The boosted neuron either out-depolarised the weak one or
        // already fired (and was reset) within the window.
        assert!(strong_spiked || strong.v[0] > weak.v[0]);
        assert!(!strong_spiked || weak.spikes[0] == 0.0);
    }

    #[test]
    fn reset_state_preserves_theta_and_faults() {
        let mut l = layer(2);
        l.threshold_scale[1] = 0.7;
        for _ in 0..100 {
            l.step(&[5.0, 5.0]);
        }
        let theta = l.theta.clone();
        l.reset_state();
        assert_eq!(l.v, vec![-65.0, -65.0]);
        assert_eq!(l.theta, theta);
        assert_eq!(l.threshold_scale[1], 0.7);
        l.clear_faults();
        assert_eq!(l.threshold_scale[1], 1.0);
    }

    #[test]
    fn traces_decay_exponentially() {
        let mut l = layer(1);
        while l.spikes[0] == 0.0 {
            l.step(&[5.0]);
        }
        assert_eq!(l.traces[0], 1.0);
        l.step(&[0.0]);
        let expect = (-1.0f32 / 20.0).exp();
        assert!((l.traces[0] - expect).abs() < 1e-6);
    }

    #[test]
    fn input_layer_traces() {
        let mut input = InputLayer::new(3, 20.0, 1.0);
        input.set_spikes(&[1.0, 0.0, 0.0]);
        assert_eq!(input.traces[0], 1.0);
        input.set_spikes(&[0.0, 1.0, 0.0]);
        assert!(input.traces[0] < 1.0);
        assert_eq!(input.traces[1], 1.0);
        input.reset_state();
        assert_eq!(input.traces, vec![0.0; 3]);
    }
}
