//! Training and evaluation protocol for the Diehl&Cook network.
//!
//! Mirrors the paper's §IV-A setup: a single pass over the training
//! images with STDP enabled, neuron-to-class assignment from the recorded
//! training activity, then accuracy measurement (with learning frozen) on
//! an evaluation set.

use neurofi_data::LabeledImages;

use crate::classify::{assign_labels, predict_all_activity};
use crate::diehl_cook::DiehlCook2015;

/// Options for [`train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOptions {
    /// Number of digit classes (10).
    pub n_classes: usize,
    /// Assign labels from only the last `assignment_window` samples
    /// (`None` = all samples). Later samples reflect the converged
    /// weights better; BindsNET's online protocol uses a trailing window.
    pub assignment_window: Option<usize>,
    /// When true, STDP updates are accumulated over
    /// [`DiehlCookConfig::batch_size`]-sample batches and applied at batch
    /// boundaries (the paper's batch-32 protocol). The default processes
    /// samples sequentially with immediate updates, which trains slightly
    /// "ahead" of the batched variant but is otherwise equivalent.
    ///
    /// [`DiehlCookConfig::batch_size`]: crate::diehl_cook::DiehlCookConfig::batch_size
    pub batched: bool,
}

impl Default for TrainOptions {
    fn default() -> TrainOptions {
        TrainOptions {
            n_classes: 10,
            // BindsNET's online protocol assigns labels from the trailing
            // `update_interval = 250` samples; the converged weights make
            // late records more informative than early ones.
            assignment_window: Some(250),
            batched: false,
        }
    }
}

/// Artifacts of a training pass.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Digit class assigned to each excitatory neuron.
    pub assignments: Vec<usize>,
    /// Excitatory spike counts recorded for every training presentation.
    pub spike_records: Vec<Vec<f32>>,
    /// Labels of the presented samples, aligned with `spike_records`.
    pub labels: Vec<u8>,
    /// Mean excitatory spikes per presentation (activity health metric).
    pub mean_activity: f64,
    /// Fraction of presentations with zero excitatory spikes.
    pub silent_fraction: f64,
    /// BindsNET-style online accuracy per trailing window: each entry is
    /// the accuracy over one `assignment_window`-sized block of training
    /// samples, predicted with assignments derived from the *previous*
    /// block (empty when fewer than two blocks were presented).
    pub online_accuracy: Vec<f64>,
}

/// Trains `net` on `data` (one pass, learning enabled) and derives
/// neuron-class assignments.
///
/// # Panics
/// Panics if `data` is empty or image sizes mismatch the network.
pub fn train(net: &mut DiehlCook2015, data: &LabeledImages, options: &TrainOptions) -> TrainReport {
    train_with_hook(net, data, options, |_, _| {})
}

/// Like [`train`], but invokes `hook(sample_index, net)` before each
/// presentation. This is the extension point for *transient* fault
/// injection (supply glitches active only during part of training) and
/// for custom instrumentation.
///
/// # Panics
/// Panics if `data` is empty or image sizes mismatch the network.
pub fn train_with_hook(
    net: &mut DiehlCook2015,
    data: &LabeledImages,
    options: &TrainOptions,
    mut hook: impl FnMut(usize, &mut DiehlCook2015),
) -> TrainReport {
    assert!(!data.is_empty(), "training set must not be empty");
    let mut spike_records = Vec::with_capacity(data.len());
    let mut labels = Vec::with_capacity(data.len());
    let mut total_spikes = 0.0f64;
    let mut silent = 0usize;
    let batch_size = if options.batched {
        net.config().batch_size.max(1)
    } else {
        1
    };
    for (index, (image, label)) in data.iter().enumerate() {
        if options.batched && index % batch_size == 0 {
            net.end_batch();
            net.begin_batch();
        }
        hook(index, net);
        let counts = net.run_sample(image, true);
        let sum: f32 = counts.iter().sum();
        total_spikes += sum as f64;
        if sum == 0.0 {
            silent += 1;
        }
        spike_records.push(counts);
        labels.push(label);
    }
    net.end_batch();
    let window = options
        .assignment_window
        .unwrap_or(spike_records.len())
        .min(spike_records.len())
        .max(1);

    // Online accuracy: predict each block with the previous block's
    // assignments (the BindsNET eth_mnist progress metric).
    let mut online_accuracy = Vec::new();
    let mut block_start = window;
    while block_start < spike_records.len() {
        let block_end = (block_start + window).min(spike_records.len());
        let assignments = assign_labels(
            &spike_records[block_start - window..block_start],
            &labels[block_start - window..block_start],
            options.n_classes,
        );
        let mut correct = 0usize;
        for i in block_start..block_end {
            if predict_all_activity(&spike_records[i], &assignments, options.n_classes)
                == labels[i] as usize
            {
                correct += 1;
            }
        }
        online_accuracy.push(correct as f64 / (block_end - block_start) as f64);
        block_start = block_end;
    }

    let start = spike_records.len() - window;
    let assignments = assign_labels(&spike_records[start..], &labels[start..], options.n_classes);
    TrainReport {
        assignments,
        mean_activity: total_spikes / data.len() as f64,
        silent_fraction: silent as f64 / data.len() as f64,
        spike_records,
        labels,
        online_accuracy,
    }
}

/// Evaluates classification accuracy on `data` with learning frozen.
/// Returns the fraction of correctly classified samples.
///
/// # Panics
/// Panics if `data` is empty or sizes mismatch.
pub fn evaluate(
    net: &mut DiehlCook2015,
    assignments: &[usize],
    data: &LabeledImages,
    n_classes: usize,
) -> f64 {
    assert!(!data.is_empty(), "evaluation set must not be empty");
    // Pin the encoding counter so repeated evaluations of the same
    // network and dataset are bit-identical (training may have advanced
    // it by a varying amount), and snapshot the adaptive thresholds —
    // they keep adapting during evaluation (hardware has no test mode)
    // but must not leak across evaluations.
    net.set_sample_counter(1 << 32);
    let theta_exc = net.excitatory.theta.clone();
    let theta_inh = net.inhibitory.theta.clone();
    let mut correct = 0usize;
    for (image, label) in data.iter() {
        let counts = net.run_sample(image, false);
        if predict_all_activity(&counts, assignments, n_classes) == label as usize {
            correct += 1;
        }
    }
    net.excitatory.theta = theta_exc;
    net.inhibitory.theta = theta_inh;
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diehl_cook::DiehlCookConfig;
    use neurofi_data::SynthDigits;

    fn tiny_net(seed: u64) -> DiehlCook2015 {
        let mut config = DiehlCookConfig::quick();
        config.sample_time_ms = 100.0;
        DiehlCook2015::new(config, seed)
    }

    #[test]
    fn train_produces_consistent_report() {
        let data = SynthDigits::default().generate(30, 3);
        let mut net = tiny_net(1);
        let report = train(&mut net, &data, &TrainOptions::default());
        assert_eq!(report.assignments.len(), 100);
        assert_eq!(report.spike_records.len(), 30);
        assert_eq!(report.labels.len(), 30);
        assert!(report.mean_activity > 0.0, "network completely silent");
        assert!(report.assignments.iter().all(|&a| a < 10));
    }

    #[test]
    fn assignment_window_restricts_records() {
        let data = SynthDigits::default().generate(30, 3);
        let full = {
            let mut net = tiny_net(1);
            train(&mut net, &data, &TrainOptions::default())
        };
        let windowed = {
            let mut net = tiny_net(1);
            train(
                &mut net,
                &data,
                &TrainOptions {
                    assignment_window: Some(10),
                    ..Default::default()
                },
            )
        };
        // Identical dynamics (same seed), potentially different
        // assignments from the different windows.
        assert_eq!(full.spike_records, windowed.spike_records);
    }

    #[test]
    fn small_training_run_beats_chance() {
        // 150 samples, abbreviated exposure: far from the paper's setup,
        // but the pipeline must already classify well above the 10%
        // chance level.
        let gen = SynthDigits::default();
        let train_data = gen.generate(150, 11);
        let test_data = gen.generate(40, 12);
        let mut net = tiny_net(5);
        let report = train(&mut net, &train_data, &TrainOptions::default());
        let accuracy = evaluate(&mut net, &report.assignments, &test_data, 10);
        assert!(
            accuracy > 0.25,
            "accuracy {accuracy:.2} not above chance — training broken"
        );
    }

    #[test]
    fn evaluation_is_bit_reproducible() {
        let data = SynthDigits::default().generate(15, 3);
        let mut net = tiny_net(1);
        let report = train(&mut net, &data, &TrainOptions::default());
        let a = evaluate(&mut net, &report.assignments, &data, 10);
        let b = evaluate(&mut net, &report.assignments, &data, 10);
        assert_eq!(a, b, "evaluation must be deterministic per network");
    }

    #[test]
    fn evaluation_does_not_change_weights() {
        let data = SynthDigits::default().generate(20, 3);
        let mut net = tiny_net(1);
        let report = train(&mut net, &data, &TrainOptions::default());
        let weights = net.input_to_exc.w.clone();
        let _ = evaluate(&mut net, &report.assignments, &data, 10);
        assert_eq!(weights.as_slice(), net.input_to_exc.w.as_slice());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_set_rejected() {
        let data = neurofi_data::LabeledImages::empty(28, 28);
        let mut net = tiny_net(0);
        train(&mut net, &data, &TrainOptions::default());
    }

    #[test]
    fn batched_training_learns_and_changes_weights() {
        let data = SynthDigits::default().generate(64, 5);
        let mut net = tiny_net(2);
        let before = net.input_to_exc.w.clone();
        let report = train(
            &mut net,
            &data,
            &TrainOptions {
                batched: true,
                assignment_window: None,
                ..Default::default()
            },
        );
        assert_ne!(before.as_slice(), net.input_to_exc.w.as_slice());
        assert!(report.mean_activity > 0.0);
        // No pending batch is left open.
        net.end_batch();
    }

    #[test]
    fn batched_and_sequential_reach_similar_weights() {
        // Deferred updates lag by at most one batch; over a short run the
        // two protocols should land close to each other.
        let data = SynthDigits::default().generate(32, 5);
        let weights = |batched: bool| {
            let mut net = tiny_net(2);
            train(
                &mut net,
                &data,
                &TrainOptions {
                    batched,
                    assignment_window: None,
                    ..Default::default()
                },
            );
            // Normalise before comparing: the batched run's final batch
            // carries un-renormalised mass (normalisation happens at
            // sample starts, matching BindsNET).
            net.input_to_exc.normalize();
            net.input_to_exc.w.clone()
        };
        let seq = weights(false);
        let bat = weights(true);
        // Individual weights diverge chaotically (winner-take-all
        // amplifies the one-batch update lag into different winners), so
        // the meaningful invariant is the one normalisation enforces:
        // per-neuron incoming weight mass must match across protocols.
        for (a, b) in seq.column_sums().iter().zip(bat.column_sums()) {
            assert!(
                (a - b).abs() < 0.15 * a.abs().max(1.0),
                "column mass diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn hook_fires_once_per_sample_in_order() {
        let data = SynthDigits::default().generate(12, 3);
        let mut net = tiny_net(1);
        let mut seen = Vec::new();
        train_with_hook(&mut net, &data, &TrainOptions::default(), |i, _| {
            seen.push(i)
        });
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn hook_can_mutate_faults_mid_training() {
        let data = SynthDigits::default().generate(10, 3);
        let mut net = tiny_net(1);
        train_with_hook(&mut net, &data, &TrainOptions::default(), |i, net| {
            if i == 5 {
                net.inhibitory.threshold_scale.fill(0.8);
            }
        });
        // The fault injected mid-training is still present afterwards.
        assert!(net.inhibitory.threshold_scale.iter().all(|&s| s == 0.8));
    }

    #[test]
    fn online_accuracy_blocks() {
        let data = SynthDigits::default().generate(30, 3);
        let mut net = tiny_net(1);
        let report = train(
            &mut net,
            &data,
            &TrainOptions {
                assignment_window: Some(10),
                ..Default::default()
            },
        );
        // 30 samples, window 10 → blocks [10,20) and [20,30).
        assert_eq!(report.online_accuracy.len(), 2);
        for acc in &report.online_accuracy {
            assert!((0.0..=1.0).contains(acc));
        }
    }

    #[test]
    fn online_accuracy_empty_without_two_blocks() {
        let data = SynthDigits::default().generate(8, 3);
        let mut net = tiny_net(1);
        let report = train(&mut net, &data, &TrainOptions::default());
        assert!(report.online_accuracy.is_empty());
    }
}
