//! The Diehl&Cook (2015) unsupervised digit-classification network, as
//! configured by the paper (§IV-A).
//!
//! Architecture (paper Fig. 7a):
//!
//! ```text
//! 784 Poisson inputs ──all-to-all (plastic, STDP)──▶ 100 excitatory (EL)
//! EL ──one-to-one (+22.5)──▶ 100 inhibitory (IL)
//! IL ──all-but-self (−120)──▶ EL        (lateral competition)
//! ```
//!
//! Learning is a single pass with post-pre STDP (rates 4·10⁻⁴/2·10⁻⁴),
//! per-sample weight normalisation to 78.4, and adaptive excitatory
//! thresholds. Classification assigns each excitatory neuron to the digit
//! class it fires most for, then predicts by mean assigned-class activity.
//!
//! The paper trains with batch size 32. Both protocols are available:
//! sequential immediate STDP updates (default), and true batched training
//! ([`begin_batch`]/[`end_batch`], driven by
//! `TrainOptions::batched`) where updates accumulate over each batch and
//! apply at the boundary.
//!
//! [`begin_batch`]: DiehlCook2015::begin_batch
//! [`end_batch`]: DiehlCook2015::end_batch

use crate::encoding::PoissonEncoder;
use crate::learning::PostPreStdp;
use crate::neurons::{InputLayer, LifLayer, LifParameters};
use crate::topology::{DenseConnection, LateralInhibition, OneToOneConnection};

/// Configuration of the Diehl&Cook network.
#[derive(Debug, Clone, PartialEq)]
pub struct DiehlCookConfig {
    /// Number of input channels (784 for 28×28 images).
    pub n_input: usize,
    /// Excitatory population size (100 in the paper).
    pub n_excitatory: usize,
    /// Inhibitory population size (100 in the paper).
    pub n_inhibitory: usize,
    /// Excitatory → inhibitory one-to-one weight (22.5).
    pub exc_weight: f32,
    /// Inhibitory → excitatory lateral weight magnitude (120, applied
    /// negatively).
    pub inh_weight: f32,
    /// Upper bound for plastic input weights.
    pub w_max: f32,
    /// Initial weight scale (uniform in `[0, w_init)`).
    pub w_init: f32,
    /// Per-neuron incoming-weight normalisation target (78.4).
    pub norm: f32,
    /// Simulation time per sample, ms (250 in BindsNET's protocol).
    pub sample_time_ms: f64,
    /// Simulation step, ms.
    pub dt_ms: f64,
    /// Poisson rate of a fully-bright pixel, Hz (BindsNET intensity 128).
    pub max_rate_hz: f64,
    /// STDP learning rates.
    pub stdp: PostPreStdp,
    /// Batch size from the paper's protocol (32); used when training with
    /// `TrainOptions::batched` — see module docs.
    pub batch_size: usize,
    /// Excitatory neuron parameters.
    pub excitatory: LifParameters,
    /// Inhibitory neuron parameters.
    pub inhibitory: LifParameters,
}

impl Default for DiehlCookConfig {
    fn default() -> DiehlCookConfig {
        DiehlCookConfig {
            n_input: 784,
            n_excitatory: 100,
            n_inhibitory: 100,
            exc_weight: 22.5,
            inh_weight: 120.0,
            w_max: 1.0,
            w_init: 0.3,
            norm: 78.4,
            sample_time_ms: 250.0,
            dt_ms: 1.0,
            // BindsNET's eth_mnist intensity: a 255 pixel fires at 128 Hz.
            max_rate_hz: 128.0,
            // BindsNET's shipped rates, which reproduce the paper's
            // baseline — see PostPreStdp::paper() for why the paper's
            // prose rates are not used here.
            stdp: PostPreStdp::bindsnet(),
            batch_size: 32,
            excitatory: LifParameters::diehl_cook_excitatory(),
            inhibitory: LifParameters::diehl_cook_inhibitory(),
        }
    }
}

impl DiehlCookConfig {
    /// A reduced-fidelity configuration for fast tests and smoke
    /// reproduction: shorter exposure per sample.
    pub fn quick() -> DiehlCookConfig {
        DiehlCookConfig {
            sample_time_ms: 100.0,
            ..DiehlCookConfig::default()
        }
    }
}

/// The instantiated network.
#[derive(Debug, Clone)]
pub struct DiehlCook2015 {
    config: DiehlCookConfig,
    /// Input population (Poisson spike carriers + traces).
    pub input: InputLayer,
    /// Excitatory population (adaptive thresholds; fault hooks live here).
    pub excitatory: LifLayer,
    /// Inhibitory population (fault hooks live here).
    pub inhibitory: LifLayer,
    /// Plastic input → excitatory pathway (drive-gain fault hook).
    pub input_to_exc: DenseConnection,
    /// Excitatory → inhibitory one-to-one pathway.
    pub exc_to_inh: OneToOneConnection,
    /// Inhibitory → excitatory lateral competition.
    pub inh_to_exc: LateralInhibition,
    encoder: PoissonEncoder,
    /// When false, STDP is disabled (evaluation mode).
    pub learning: bool,
    seed: u64,
    samples_seen: u64,
    /// When batching, STDP updates accumulate here instead of being
    /// applied immediately; `end_batch` applies the sum.
    pending_deltas: Option<crate::tensor::Matrix>,
    // Scratch buffers reused across steps.
    exc_current: Vec<f32>,
    inh_current: Vec<f32>,
    spike_buffer: Vec<f32>,
}

impl DiehlCook2015 {
    /// Builds the network with seeded weight initialisation and encoding.
    ///
    /// # Panics
    /// Panics if the configuration is structurally invalid (zero-sized
    /// layers, non-positive times, or an excitatory/inhibitory size
    /// mismatch — the one-to-one wiring requires equal sizes).
    pub fn new(config: DiehlCookConfig, seed: u64) -> DiehlCook2015 {
        assert_eq!(
            config.n_excitatory, config.n_inhibitory,
            "one-to-one wiring requires equally sized EL and IL"
        );
        assert!(config.sample_time_ms > 0.0, "sample time must be positive");
        let dt = config.dt_ms as f32;
        let input = InputLayer::new(config.n_input, config.excitatory.tau_trace, dt);
        let excitatory = LifLayer::new(config.n_excitatory, config.excitatory.clone(), dt);
        let inhibitory = LifLayer::new(config.n_inhibitory, config.inhibitory.clone(), dt);
        let input_to_exc = DenseConnection::random(
            config.n_input,
            config.n_excitatory,
            config.w_init,
            0.0,
            config.w_max,
            seed,
        )
        .with_norm(config.norm);
        let exc_to_inh = OneToOneConnection::new(config.n_excitatory, config.exc_weight);
        let inh_to_exc = LateralInhibition::new(config.n_inhibitory, -config.inh_weight.abs());
        let encoder = PoissonEncoder::new(config.max_rate_hz, config.dt_ms, seed ^ 0x9e37_79b9);
        let n_exc = config.n_excitatory;
        let n_inh = config.n_inhibitory;
        let n_in = config.n_input;
        DiehlCook2015 {
            config,
            input,
            excitatory,
            inhibitory,
            input_to_exc,
            exc_to_inh,
            inh_to_exc,
            encoder,
            learning: true,
            seed,
            samples_seen: 0,
            pending_deltas: None,
            exc_current: vec![0.0; n_exc],
            inh_current: vec![0.0; n_inh],
            spike_buffer: vec![0.0; n_in],
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &DiehlCookConfig {
        &self.config
    }

    /// Number of simulation steps per sample.
    pub fn steps_per_sample(&self) -> usize {
        (self.config.sample_time_ms / self.config.dt_ms).round() as usize
    }

    /// Advances the network one step with the given input spikes
    /// (synchronous update: layer inputs are computed from the previous
    /// step's spikes before any layer advances).
    ///
    /// # Panics
    /// Panics if `input_spikes.len() != config.n_input`.
    pub fn step(&mut self, input_spikes: &[f32]) {
        self.input.set_spikes(input_spikes);

        self.exc_current.fill(0.0);
        self.input_to_exc
            .forward_into(&self.input.spikes, &mut self.exc_current);
        self.inh_to_exc
            .forward_into(&self.inhibitory.spikes, &mut self.exc_current);

        self.inh_current.fill(0.0);
        self.exc_to_inh
            .forward_into(&self.excitatory.spikes, &mut self.inh_current);

        self.excitatory.step(&self.exc_current);
        self.inhibitory.step(&self.inh_current);

        if self.learning {
            match &mut self.pending_deltas {
                Some(deltas) => self.config.stdp.accumulate(
                    &self.input_to_exc,
                    deltas,
                    &self.input.spikes,
                    &self.input.traces,
                    &self.excitatory.spikes,
                    &self.excitatory.traces,
                ),
                None => self.config.stdp.update(
                    &mut self.input_to_exc,
                    &self.input.spikes,
                    &self.input.traces,
                    &self.excitatory.spikes,
                    &self.excitatory.traces,
                ),
            }
        }
    }

    /// Starts a training batch: subsequent STDP updates accumulate into a
    /// pending-delta buffer instead of the shared weights, mirroring
    /// BindsNET's batched training (the paper trains with batch size 32).
    pub fn begin_batch(&mut self) {
        self.pending_deltas = Some(crate::tensor::Matrix::zeros(
            self.config.n_input,
            self.config.n_excitatory,
        ));
    }

    /// Ends a training batch, applying the accumulated weight deltas (with
    /// clamping) to the shared weights. No-op when no batch is open.
    pub fn end_batch(&mut self) {
        if let Some(deltas) = self.pending_deltas.take() {
            for r in 0..deltas.rows() {
                self.input_to_exc.w.add_into_row(r, deltas.row(r));
            }
            self.input_to_exc.clamp_weights();
        }
    }

    /// Presents one image for `sample_time_ms`, returning the excitatory
    /// spike count per neuron. Dynamic state resets between samples
    /// (adaptive thresholds and learned weights persist); weights are
    /// renormalised before the presentation when `train` is set.
    ///
    /// # Panics
    /// Panics if `image.len() != config.n_input`.
    pub fn run_sample(&mut self, image: &[u8], train: bool) -> Vec<f32> {
        assert_eq!(
            image.len(),
            self.config.n_input,
            "image size does not match the input layer"
        );
        self.learning = train;
        // Threshold adaptation stays active in both modes: the analog
        // hardware this models has no train/test switch. The evaluation
        // protocol in `trainer::evaluate` snapshots and restores theta so
        // repeated evaluations are reproducible.
        if train {
            self.input_to_exc.normalize();
        }
        self.input.reset_state();
        self.excitatory.reset_state();
        self.inhibitory.reset_state();
        // Per-sample deterministic encoding stream.
        self.encoder
            .reseed(self.seed ^ self.samples_seen.wrapping_mul(0x2545_f491_4f6c_dd1d));
        self.samples_seen += 1;

        let steps = self.steps_per_sample();
        let mut counts = vec![0.0f32; self.config.n_excitatory];
        let mut spikes = std::mem::take(&mut self.spike_buffer);
        for _ in 0..steps {
            self.encoder.encode_step_into(image, &mut spikes);
            self.step(&spikes);
            for (c, &s) in counts.iter_mut().zip(&self.excitatory.spikes) {
                *c += s;
            }
        }
        self.spike_buffer = spikes;
        counts
    }

    /// Clears every injected fault (threshold scales and drive gains).
    pub fn clear_faults(&mut self) {
        self.excitatory.clear_faults();
        self.inhibitory.clear_faults();
        self.input_to_exc.gain = 1.0;
    }

    /// Pins the per-sample encoding counter. Each presentation derives its
    /// Poisson stream from `(network seed, counter)`, so fixing the
    /// counter makes a run over the same dataset bit-reproducible — the
    /// evaluation protocol uses this so that repeated evaluations of one
    /// network agree exactly.
    pub fn set_sample_counter(&mut self, value: u64) {
        self.samples_seen = value;
    }

    /// The current per-sample encoding counter.
    pub fn sample_counter(&self) -> u64 {
        self.samples_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofi_data::SynthDigits;

    fn quick_net(seed: u64) -> DiehlCook2015 {
        let mut config = DiehlCookConfig::quick();
        config.sample_time_ms = 100.0;
        DiehlCook2015::new(config, seed)
    }

    #[test]
    fn paper_configuration_defaults() {
        let c = DiehlCookConfig::default();
        assert_eq!(c.n_input, 784);
        assert_eq!(c.n_excitatory, 100);
        assert_eq!(c.n_inhibitory, 100);
        assert!((c.exc_weight - 22.5).abs() < 1e-6);
        assert!((c.inh_weight - 120.0).abs() < 1e-6);
        assert!((c.norm - 78.4).abs() < 1e-6);
        assert_eq!(c.batch_size, 32);
    }

    #[test]
    fn excitatory_neurons_respond_to_input() {
        let data = SynthDigits::default().generate(4, 5);
        let mut net = quick_net(1);
        let counts = net.run_sample(data.image(0), true);
        let total: f32 = counts.iter().sum();
        assert!(total > 0.0, "no excitatory activity at all");
        assert!(total < 2000.0, "implausible activity level {total}");
    }

    #[test]
    fn lateral_inhibition_sparsifies_activity() {
        // With −120 lateral inhibition only a few neurons should dominate
        // each presentation (competition), versus many without it.
        let data = SynthDigits::default().generate(2, 9);
        let active = |inh: f32| {
            let mut config = DiehlCookConfig::quick();
            config.inh_weight = inh;
            let mut net = DiehlCook2015::new(config, 3);
            let counts = net.run_sample(data.image(0), true);
            counts.iter().filter(|&&c| c > 0.0).count()
        };
        let with_inh = active(120.0);
        let without = active(0.0);
        assert!(
            with_inh < without,
            "inhibition should sparsify: {with_inh} vs {without}"
        );
    }

    #[test]
    fn run_sample_is_deterministic_in_sequence() {
        let data = SynthDigits::default().generate(3, 5);
        let run = || {
            let mut net = quick_net(7);
            let mut all = Vec::new();
            for (img, _) in data.iter() {
                all.push(net.run_sample(img, true));
            }
            all
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn learning_changes_weights_evaluation_does_not() {
        let data = SynthDigits::default().generate(2, 5);
        let mut net = quick_net(7);
        let before = net.input_to_exc.w.clone();
        net.run_sample(data.image(0), true);
        let after_train = net.input_to_exc.w.clone();
        assert_ne!(before.as_slice(), after_train.as_slice());
        net.run_sample(data.image(1), false);
        assert_eq!(
            after_train.as_slice(),
            net.input_to_exc.w.as_slice(),
            "evaluation must not learn"
        );
    }

    #[test]
    fn theta_accumulates_across_samples() {
        let data = SynthDigits::default().generate(4, 5);
        let mut net = quick_net(7);
        for (img, _) in data.iter() {
            net.run_sample(img, true);
        }
        let total_theta: f32 = net.excitatory.theta.iter().sum();
        assert!(total_theta > 0.0, "adaptive thresholds never engaged");
    }

    #[test]
    fn silencing_inhibitory_layer_floods_excitatory() {
        // The Attack-3 mechanism: scaling the (negative) IL threshold by
        // 0.8 silences the inhibitory population, removing competition.
        let data = SynthDigits::default().generate(2, 5);
        let mut nominal = quick_net(3);
        let n_counts = nominal.run_sample(data.image(0), true);
        let n_active = n_counts.iter().filter(|&&c| c > 0.0).count();
        let n_inh_spikes: f32 = nominal.inhibitory.spikes.iter().sum();
        let _ = n_inh_spikes;

        let mut attacked = quick_net(3);
        attacked.inhibitory.threshold_scale.fill(0.8);
        let a_counts = attacked.run_sample(data.image(0), true);
        let a_active = a_counts.iter().filter(|&&c| c > 0.0).count();
        assert!(
            a_active >= n_active,
            "silenced inhibition should not reduce activity ({a_active} vs {n_active})"
        );
        let a_total: f32 = a_counts.iter().sum();
        let n_total: f32 = n_counts.iter().sum();
        assert!(
            a_total > n_total,
            "total excitatory activity should rise without inhibition"
        );
    }

    #[test]
    #[should_panic(expected = "equally sized")]
    fn rejects_mismatched_populations() {
        let config = DiehlCookConfig {
            n_inhibitory: 50,
            ..Default::default()
        };
        DiehlCook2015::new(config, 0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rejects_wrong_image_size() {
        let mut net = quick_net(0);
        net.run_sample(&[0u8; 100], true);
    }
}
