//! Minimal dense-matrix kernels for spike-driven networks.
//!
//! Spiking networks need very few linear-algebra primitives, but they need
//! them fast and in the right access pattern: spikes are sparse, so the
//! hot operation is "accumulate the rows of spiking presynaptic neurons
//! into a postsynaptic current vector", which is cache-friendly on a
//! row-major `[pre][post]` layout.

/// Row-major `f32` matrix with `rows` presynaptic and `cols` postsynaptic
/// entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a generator function `f(row, col)`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Number of rows (presynaptic neurons).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (postsynaptic neurons).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Element mutation.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Immutable view of one row.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of one row.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// `out[c] += gain * self[row][c]` — the spike-propagation kernel.
    ///
    /// # Panics
    /// Panics if `out.len() != cols` or `row` is out of bounds.
    #[inline]
    pub fn add_row_into(&self, row: usize, gain: f32, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "output length mismatch");
        for (o, w) in out.iter_mut().zip(self.row(row)) {
            *o += gain * w;
        }
    }

    /// Adds `delta[c]` to every entry of `row` — the presynaptic STDP
    /// update (`w[i][:] -= nu_pre * post_trace[:]` with `delta`
    /// pre-negated by the caller).
    ///
    /// # Panics
    /// Panics if `delta.len() != cols` or `row` is out of bounds.
    #[inline]
    pub fn add_into_row(&mut self, row: usize, delta: &[f32]) {
        assert_eq!(delta.len(), self.cols, "delta length mismatch");
        for (w, d) in self.row_mut(row).iter_mut().zip(delta) {
            *w += d;
        }
    }

    /// Adds `gain * values[r]` to column `col` — the postsynaptic STDP
    /// update (`w[:][j] += nu_post * pre_trace[:]`).
    ///
    /// # Panics
    /// Panics if `values.len() != rows` or `col` is out of bounds.
    #[inline]
    pub fn add_into_col(&mut self, col: usize, gain: f32, values: &[f32]) {
        assert_eq!(values.len(), self.rows, "values length mismatch");
        assert!(col < self.cols, "column out of bounds");
        for (r, v) in values.iter().enumerate() {
            self.data[r * self.cols + col] += gain * v;
        }
    }

    /// Adds `gain * values[c]` to every entry of `row` — the fused form of
    /// [`Matrix::add_into_row`] that computes the scaled delta on the fly,
    /// so spike-driven updates need no scratch vector.
    ///
    /// # Panics
    /// Panics if `values.len() != cols` or `row` is out of bounds.
    #[inline]
    pub fn add_scaled_into_row(&mut self, row: usize, gain: f32, values: &[f32]) {
        assert_eq!(values.len(), self.cols, "values length mismatch");
        for (w, v) in self.row_mut(row).iter_mut().zip(values) {
            *w += gain * v;
        }
    }

    /// Clamps every entry of `row` into `[lo, hi]` — the sparsity-scaled
    /// companion of [`Matrix::clamp_all`] for updates that touched a
    /// single presynaptic row.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `row` is out of bounds.
    #[inline]
    pub fn clamp_row(&mut self, row: usize, lo: f32, hi: f32) {
        assert!(lo <= hi, "invalid clamp range");
        for w in self.row_mut(row) {
            *w = w.clamp(lo, hi);
        }
    }

    /// `self[r][col] = clamp(self[r][col] + gain * values[r])` — the
    /// postsynaptic STDP update with the bound clamp fused into the single
    /// strided column walk.
    ///
    /// # Panics
    /// Panics if `values.len() != rows`, `col` is out of bounds, or
    /// `lo > hi`.
    #[inline]
    pub fn add_clamped_into_col(
        &mut self,
        col: usize,
        gain: f32,
        values: &[f32],
        lo: f32,
        hi: f32,
    ) {
        assert_eq!(values.len(), self.rows, "values length mismatch");
        assert!(col < self.cols, "column out of bounds");
        assert!(lo <= hi, "invalid clamp range");
        for (r, v) in values.iter().enumerate() {
            let w = &mut self.data[r * self.cols + col];
            *w = (*w + gain * v).clamp(lo, hi);
        }
    }

    /// Clamps every element into `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn clamp_all(&mut self, lo: f32, hi: f32) {
        assert!(lo <= hi, "invalid clamp range");
        for w in &mut self.data {
            *w = w.clamp(lo, hi);
        }
    }

    /// Sum of each column (total incoming weight per postsynaptic neuron).
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (s, w) in sums.iter_mut().zip(self.row(r)) {
                *s += *w;
            }
        }
        sums
    }

    /// Rescales each column so its sum equals `target` (columns with zero
    /// sum are left untouched) — Diehl&Cook weight normalisation.
    pub fn normalize_columns(&mut self, target: f32) {
        let sums = self.column_sums();
        let scales: Vec<f32> = sums
            .iter()
            .map(|&s| {
                if s.abs() > f32::EPSILON {
                    target / s
                } else {
                    1.0
                }
            })
            .collect();
        for r in 0..self.rows {
            for (w, scale) in self.row_mut(r).iter_mut().zip(&scales) {
                *w *= scale;
            }
        }
    }

    /// The raw data slice (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

/// In-place exponential decay toward zero: `x *= factor` for every entry.
/// Shared by membrane traces; `factor = exp(-dt/tau)`.
#[inline]
pub fn decay(values: &mut [f32], factor: f32) {
    for v in values {
        *v *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn add_row_into_accumulates() {
        let m = Matrix::from_fn(2, 3, |r, c| (r + c) as f32);
        let mut out = vec![1.0f32; 3];
        m.add_row_into(1, 2.0, &mut out);
        assert_eq!(out, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn column_update() {
        let mut m = Matrix::zeros(3, 2);
        m.add_into_col(1, 0.5, &[2.0, 4.0, 6.0]);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(2, 1), 3.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn row_update() {
        let mut m = Matrix::zeros(2, 3);
        m.add_into_row(0, &[1.0, -2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0, -2.0, 3.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn scaled_row_update_matches_precomputed_delta() {
        let mut fused = Matrix::zeros(2, 3);
        let mut staged = Matrix::zeros(2, 3);
        let values = [1.0f32, -2.0, 0.5];
        let gain = -0.25f32;
        fused.add_scaled_into_row(1, gain, &values);
        let delta: Vec<f32> = values.iter().map(|v| gain * v).collect();
        staged.add_into_row(1, &delta);
        assert_eq!(fused, staged);
    }

    #[test]
    fn clamp_row_touches_only_its_span() {
        let mut m = Matrix::from_fn(3, 3, |_, _| 5.0);
        m.clamp_row(0, 0.0, 1.0);
        assert_eq!(m.row(0), &[1.0, 1.0, 1.0]);
        assert_eq!(m.row(1), &[5.0, 5.0, 5.0]);
    }

    #[test]
    fn clamped_col_update_matches_add_then_clamp() {
        let mut fused = Matrix::from_fn(3, 2, |r, _| r as f32 * 0.4);
        let mut staged = fused.clone();
        let values = [1.0f32, 2.0, -4.0];
        fused.add_clamped_into_col(1, 0.5, &values, 0.0, 1.0);
        staged.add_into_col(1, 0.5, &values);
        staged.clamp_all(0.0, 1.0);
        for r in 0..3 {
            assert_eq!(fused.get(r, 1).to_bits(), staged.get(r, 1).to_bits());
            // Column 0 untouched by the fused update.
            assert_eq!(fused.get(r, 0), r as f32 * 0.4);
        }
    }

    #[test]
    fn clamp() {
        let mut m = Matrix::from_fn(1, 4, |_, c| c as f32 - 1.5);
        m.clamp_all(0.0, 1.0);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn normalization_hits_target() {
        let mut m = Matrix::from_fn(4, 2, |r, _| (r + 1) as f32);
        m.normalize_columns(5.0);
        let sums = m.column_sums();
        for s in sums {
            assert!((s - 5.0).abs() < 1e-5);
        }
    }

    #[test]
    fn normalization_skips_zero_columns() {
        let mut m = Matrix::zeros(3, 2);
        m.set(0, 0, 2.0);
        m.normalize_columns(4.0);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.column_sums()[1], 0.0);
    }

    #[test]
    fn normalization_is_idempotent() {
        let mut m = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) % 7) as f32 * 0.1 + 0.05);
        m.normalize_columns(2.0);
        let once = m.clone();
        m.normalize_columns(2.0);
        for (a, b) in m.as_slice().iter().zip(once.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn decay_shrinks() {
        let mut v = vec![2.0f32, -4.0];
        decay(&mut v, 0.5);
        assert_eq!(v, vec![1.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_rejected() {
        Matrix::zeros(0, 3);
    }
}
