//! Synaptic connection topologies.
//!
//! Three wiring patterns cover the Diehl&Cook network: dense all-to-all
//! (input → excitatory, plastic), one-to-one (excitatory → inhibitory),
//! and all-but-self lateral inhibition (inhibitory → excitatory).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Matrix;

/// Dense all-to-all connection with optional weight bounds and column
/// normalisation (the plastic input → excitatory pathway).
#[derive(Debug, Clone)]
pub struct DenseConnection {
    /// Weight matrix, `[pre][post]`. When writing out-of-range values
    /// directly, call [`DenseConnection::mark_weights_dirty`] (or
    /// [`DenseConnection::clamp_weights`]) afterwards so STDP's
    /// sparsity-scaled clamping keeps its in-bounds invariant.
    pub w: Matrix,
    /// Lower weight bound.
    pub w_min: f32,
    /// Upper weight bound.
    pub w_max: f32,
    /// Per-post-neuron target for the sum of incoming weights
    /// (Diehl&Cook uses 78.4); `None` disables normalisation.
    pub norm: Option<f32>,
    /// FAULT HOOK: multiplicative drive scale applied at propagation time
    /// (1.0 = nominal). Models corrupted input-spike amplitude from the
    /// current drivers (paper Attacks 1 and 5) without touching the
    /// learned weights.
    pub gain: f32,
    /// Set when an operation (normalisation) may have pushed weights
    /// outside `[w_min, w_max]`; cleared by a full clamp. While false,
    /// every weight is known in-bounds, so STDP only needs to clamp the
    /// rows/columns it touched.
    pub(crate) maybe_unclamped: bool,
    /// Reusable `cols`-sized buffer for the per-step depression delta, so
    /// the STDP hot loop never allocates.
    pub(crate) depression_scratch: Vec<f32>,
}

impl DenseConnection {
    /// Creates a connection with uniform random weights in
    /// `[0, init_scale)`, matching BindsNET's initialisation.
    ///
    /// # Panics
    /// Panics if dimensions are zero or bounds are inverted.
    pub fn random(
        pre: usize,
        post: usize,
        init_scale: f32,
        w_min: f32,
        w_max: f32,
        seed: u64,
    ) -> DenseConnection {
        assert!(w_min <= w_max, "inverted weight bounds");
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Matrix::from_fn(pre, post, |_, _| rng.gen::<f32>() * init_scale);
        DenseConnection {
            w,
            w_min,
            w_max,
            norm: None,
            gain: 1.0,
            // Random initialisation draws from [0, init_scale), which may
            // exceed w_max for degenerate configurations.
            maybe_unclamped: true,
            depression_scratch: vec![0.0; post],
        }
    }

    /// Sets the normalisation target (builder style).
    #[must_use]
    pub fn with_norm(mut self, norm: f32) -> DenseConnection {
        self.norm = Some(norm);
        self
    }

    /// Accumulates postsynaptic currents from presynaptic spikes:
    /// `out[post] += gain · Σ_{pre: spiking} w[pre][post]`.
    ///
    /// # Panics
    /// Panics if slice lengths do not match the matrix shape.
    pub fn forward_into(&self, pre_spikes: &[f32], out: &mut [f32]) {
        assert_eq!(pre_spikes.len(), self.w.rows(), "pre spike length mismatch");
        assert_eq!(out.len(), self.w.cols(), "output length mismatch");
        for (pre, &s) in pre_spikes.iter().enumerate() {
            if s > 0.0 {
                self.w.add_row_into(pre, s * self.gain, out);
            }
        }
    }

    /// Renormalises incoming weights per postsynaptic neuron to the
    /// configured target (no-op when `norm` is `None`). Rescaling can push
    /// individual weights above `w_max` (matching BindsNET, which does not
    /// clamp after normalisation); the excess is removed by the next STDP
    /// clamp.
    pub fn normalize(&mut self) {
        if let Some(target) = self.norm {
            self.w.normalize_columns(target);
            self.maybe_unclamped = true;
        }
    }

    /// Declares that `w` (or the bounds) may have been mutated directly
    /// into an out-of-range state. Callers writing through the public `w`
    /// field should invoke this so the next STDP update restores the
    /// in-bounds invariant with a full clamp instead of the sparse
    /// touched-rows/columns pass.
    pub fn mark_weights_dirty(&mut self) {
        self.maybe_unclamped = true;
    }

    /// Clamps all weights into `[w_min, w_max]`.
    pub fn clamp_weights(&mut self) {
        self.w.clamp_all(self.w_min, self.w_max);
        self.maybe_unclamped = false;
    }
}

/// One-to-one excitatory connection (excitatory → inhibitory, weight 22.5
/// in Diehl&Cook).
#[derive(Debug, Clone, PartialEq)]
pub struct OneToOneConnection {
    /// Connection weight applied to each matching pair.
    pub weight: f32,
    n: usize,
}

impl OneToOneConnection {
    /// Creates a one-to-one mapping over `n` neurons.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn new(n: usize, weight: f32) -> OneToOneConnection {
        assert!(n > 0, "connection must span at least one neuron");
        OneToOneConnection { weight, n }
    }

    /// `out[i] += weight · pre_spikes[i]`.
    ///
    /// # Panics
    /// Panics if slice lengths do not match.
    pub fn forward_into(&self, pre_spikes: &[f32], out: &mut [f32]) {
        assert_eq!(pre_spikes.len(), self.n, "pre spike length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        for (o, &s) in out.iter_mut().zip(pre_spikes) {
            *o += self.weight * s;
        }
    }
}

/// All-but-self lateral connection (inhibitory → excitatory, weight −120
/// in Diehl&Cook): each presynaptic spike drives every postsynaptic
/// neuron *except* its own partner.
#[derive(Debug, Clone, PartialEq)]
pub struct LateralInhibition {
    /// Connection weight (negative for inhibition).
    pub weight: f32,
    n: usize,
}

impl LateralInhibition {
    /// Creates an all-but-self mapping over `n` neurons.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn new(n: usize, weight: f32) -> LateralInhibition {
        assert!(n > 0, "connection must span at least one neuron");
        LateralInhibition { weight, n }
    }

    /// `out[j] += weight · (Σ_i pre[i] − pre[j])`.
    ///
    /// # Panics
    /// Panics if slice lengths do not match.
    pub fn forward_into(&self, pre_spikes: &[f32], out: &mut [f32]) {
        assert_eq!(pre_spikes.len(), self.n, "pre spike length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        let total: f32 = pre_spikes.iter().sum();
        if total == 0.0 {
            return;
        }
        for (j, o) in out.iter_mut().enumerate() {
            *o += self.weight * (total - pre_spikes[j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_forward_accumulates_spiking_rows() {
        let mut conn = DenseConnection::random(3, 2, 0.0, 0.0, 1.0, 0);
        conn.w.set(0, 0, 0.5);
        conn.w.set(0, 1, 0.25);
        conn.w.set(2, 0, 1.0);
        let mut out = vec![0.0f32; 2];
        conn.forward_into(&[1.0, 0.0, 1.0], &mut out);
        assert_eq!(out, vec![1.5, 0.25]);
    }

    #[test]
    fn dense_gain_scales_drive_without_touching_weights() {
        let mut conn = DenseConnection::random(2, 2, 0.0, 0.0, 1.0, 0);
        conn.w.set(0, 0, 1.0);
        conn.gain = 0.68; // the paper's VDD=0.8 drive scale
        let mut out = vec![0.0f32; 2];
        conn.forward_into(&[1.0, 0.0], &mut out);
        assert!((out[0] - 0.68).abs() < 1e-6);
        assert_eq!(conn.w.get(0, 0), 1.0, "weights must be untouched");
    }

    #[test]
    fn dense_random_init_in_range() {
        let conn = DenseConnection::random(50, 20, 0.3, 0.0, 1.0, 42);
        for &w in conn.w.as_slice() {
            assert!((0.0..0.3).contains(&w));
        }
    }

    #[test]
    fn dense_init_is_seeded() {
        let a = DenseConnection::random(10, 10, 0.3, 0.0, 1.0, 7);
        let b = DenseConnection::random(10, 10, 0.3, 0.0, 1.0, 7);
        assert_eq!(a.w, b.w);
    }

    #[test]
    fn normalization_applies_target() {
        let mut conn = DenseConnection::random(10, 4, 0.3, 0.0, 1.0, 1).with_norm(5.0);
        conn.normalize();
        for s in conn.w.column_sums() {
            assert!((s - 5.0).abs() < 1e-4);
        }
    }

    #[test]
    fn clamp_respects_bounds() {
        let mut conn = DenseConnection::random(4, 4, 0.3, 0.0, 0.1, 1);
        conn.w.set(0, 0, 5.0);
        conn.clamp_weights();
        assert!(conn.w.get(0, 0) <= 0.1);
    }

    #[test]
    fn one_to_one_maps_identically() {
        let conn = OneToOneConnection::new(3, 22.5);
        let mut out = vec![0.0f32; 3];
        conn.forward_into(&[0.0, 1.0, 0.0], &mut out);
        assert_eq!(out, vec![0.0, 22.5, 0.0]);
    }

    #[test]
    fn lateral_inhibition_spares_self() {
        let conn = LateralInhibition::new(3, -120.0);
        let mut out = vec![0.0f32; 3];
        conn.forward_into(&[0.0, 1.0, 0.0], &mut out);
        assert_eq!(out, vec![-120.0, 0.0, -120.0]);
    }

    #[test]
    fn lateral_inhibition_sums_multiple_sources() {
        let conn = LateralInhibition::new(3, -1.0);
        let mut out = vec![0.0f32; 3];
        conn.forward_into(&[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![-2.0, -2.0, -2.0]);
    }

    #[test]
    fn lateral_inhibition_quiet_when_silent() {
        let conn = LateralInhibition::new(2, -120.0);
        let mut out = vec![3.0f32; 2];
        conn.forward_into(&[0.0, 0.0], &mut out);
        assert_eq!(out, vec![3.0, 3.0]);
    }
}
