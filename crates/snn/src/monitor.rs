//! Recording utilities: spike rasters, membrane traces and
//! receptive-field inspection (the BindsNET `Monitor` role).

use crate::diehl_cook::DiehlCook2015;
use crate::tensor::Matrix;

/// A spike raster: per-step spike indicators for one population.
#[derive(Debug, Clone, Default)]
pub struct SpikeRaster {
    n: usize,
    /// `events[t]` lists the indices that spiked at step `t`.
    events: Vec<Vec<u32>>,
}

impl SpikeRaster {
    /// Creates an empty raster for a population of `n` neurons.
    pub fn new(n: usize) -> SpikeRaster {
        SpikeRaster {
            n,
            events: Vec::new(),
        }
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.n
    }

    /// Number of recorded steps.
    pub fn steps(&self) -> usize {
        self.events.len()
    }

    /// Records one step of spikes (1.0 = spike).
    ///
    /// # Panics
    /// Panics if `spikes.len()` differs from the population size.
    pub fn record(&mut self, spikes: &[f32]) {
        assert_eq!(spikes.len(), self.n, "spike vector length mismatch");
        self.events.push(
            spikes
                .iter()
                .enumerate()
                .filter(|(_, &s)| s > 0.0)
                .map(|(i, _)| i as u32)
                .collect(),
        );
    }

    /// The spiking indices at step `t`.
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    pub fn spikes_at(&self, t: usize) -> &[u32] {
        &self.events[t]
    }

    /// Total spikes per neuron over the recording.
    pub fn counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.n];
        for step in &self.events {
            for &i in step {
                counts[i as usize] += 1;
            }
        }
        counts
    }

    /// Total spikes over all neurons and steps.
    pub fn total(&self) -> u64 {
        self.events.iter().map(|s| s.len() as u64).sum()
    }

    /// Mean firing rate in spikes per step per neuron.
    pub fn mean_rate(&self) -> f64 {
        if self.events.is_empty() || self.n == 0 {
            return 0.0;
        }
        self.total() as f64 / (self.events.len() as f64 * self.n as f64)
    }

    /// Clears the recording, keeping the population size.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// Summary of one excitatory neuron's learned receptive field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceptiveFieldStats {
    /// Neuron index.
    pub neuron: usize,
    /// Sum of incoming weights.
    pub total_weight: f32,
    /// Largest incoming weight.
    pub peak_weight: f32,
    /// Fraction of total weight concentrated in the strongest 10% of
    /// inputs — a selectivity index (uniform weights give ≈0.1; a sharp
    /// receptive field approaches 1.0).
    pub concentration: f32,
}

/// Extracts the receptive field (incoming weight vector) of one
/// excitatory neuron from the plastic input connection.
///
/// # Panics
/// Panics if `neuron` is out of range.
pub fn receptive_field(net: &DiehlCook2015, neuron: usize) -> Vec<f32> {
    let w: &Matrix = &net.input_to_exc.w;
    assert!(neuron < w.cols(), "neuron index out of range");
    (0..w.rows()).map(|pre| w.get(pre, neuron)).collect()
}

/// Computes receptive-field statistics for every excitatory neuron.
pub fn receptive_field_stats(net: &DiehlCook2015) -> Vec<ReceptiveFieldStats> {
    let w = &net.input_to_exc.w;
    (0..w.cols())
        .map(|neuron| {
            let mut field = receptive_field(net, neuron);
            let total: f32 = field.iter().sum();
            let peak = field.iter().cloned().fold(0.0f32, f32::max);
            field.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let top = field.len() / 10;
            let top_sum: f32 = field[..top.max(1)].iter().sum();
            ReceptiveFieldStats {
                neuron,
                total_weight: total,
                peak_weight: peak,
                concentration: if total > 0.0 { top_sum / total } else { 0.0 },
            }
        })
        .collect()
}

/// Mean receptive-field concentration over a population — a scalar
/// measure of how much structure training has imprinted (rises as STDP
/// forms digit-selective fields; collapses under training-time attacks).
pub fn mean_concentration(net: &DiehlCook2015) -> f64 {
    let stats = receptive_field_stats(net);
    stats.iter().map(|s| s.concentration as f64).sum::<f64>() / stats.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diehl_cook::DiehlCookConfig;
    use neurofi_data::SynthDigits;

    #[test]
    fn raster_records_and_counts() {
        let mut raster = SpikeRaster::new(4);
        raster.record(&[1.0, 0.0, 0.0, 1.0]);
        raster.record(&[0.0, 0.0, 0.0, 1.0]);
        assert_eq!(raster.steps(), 2);
        assert_eq!(raster.counts(), vec![1, 0, 0, 2]);
        assert_eq!(raster.total(), 3);
        assert_eq!(raster.spikes_at(0), &[0, 3]);
        assert!((raster.mean_rate() - 3.0 / 8.0).abs() < 1e-12);
        raster.clear();
        assert_eq!(raster.steps(), 0);
        assert_eq!(raster.population(), 4);
    }

    #[test]
    fn receptive_field_matches_weight_column() {
        let net = DiehlCook2015::new(DiehlCookConfig::quick(), 3);
        let field = receptive_field(&net, 7);
        assert_eq!(field.len(), 784);
        assert_eq!(field[13], net.input_to_exc.w.get(13, 7));
    }

    #[test]
    fn training_increases_concentration() {
        let data = SynthDigits::default().generate(60, 5);
        let mut config = DiehlCookConfig::quick();
        config.sample_time_ms = 100.0;
        let mut net = DiehlCook2015::new(config, 3);
        let before = mean_concentration(&net);
        for (img, _) in data.iter() {
            net.run_sample(img, true);
        }
        let after = mean_concentration(&net);
        assert!(
            after > before,
            "stdp should concentrate receptive fields: {before:.3} -> {after:.3}"
        );
    }

    #[test]
    fn uniform_field_has_low_concentration() {
        let net = DiehlCook2015::new(DiehlCookConfig::quick(), 3);
        // Untrained fields are uniform random: top-10% mass ≈ 15-20%.
        let c = mean_concentration(&net);
        assert!(c > 0.08 && c < 0.35, "untrained concentration {c:.3}");
    }
}
