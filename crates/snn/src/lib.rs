//! # neurofi-snn
//!
//! A from-scratch behavioural spiking-neural-network library reproducing
//! the BindsNET stack the paper evaluates on: Poisson rate encoding,
//! leaky-integrate-and-fire neurons with the Diehl&Cook adaptive
//! threshold, dense/one-to-one/lateral-inhibition topologies, post-pre
//! STDP with synaptic traces, per-neuron weight normalisation and
//! all-activity classification.
//!
//! The flagship network is [`diehl_cook::DiehlCook2015`] — the unsupervised
//! digit classifier from Diehl & Cook (2015) with the paper's
//! configuration (784 inputs → 100 excitatory → 100 inhibitory, learning
//! rates 4·10⁻⁴/2·10⁻⁴, one pass over 1000 images).
//!
//! ## Fault hooks (the attack surface)
//!
//! The paper's power attacks corrupt two behavioural quantities, exposed
//! here as first-class state so `neurofi-core` can inject faults:
//!
//! * [`neurons::LifLayer::threshold_scale`] — per-neuron multiplicative
//!   threshold change (Attacks 2–5). Matching the paper's methodology,
//!   the scale applies to the *signed biological threshold* (−52 mV
//!   excitatory, −40 mV inhibitory), so a −20% change moves thresholds
//!   toward 0 mV, i.e. makes neurons harder to fire. See DESIGN.md for
//!   the polarity discussion.
//! * [`neurons::LifLayer::input_gain`] — scales the membrane-voltage
//!   change per incoming spike (Attack 1's `theta`, and the drive
//!   component of Attack 5).
//!
//! ## Quickstart
//!
//! ```
//! use neurofi_snn::diehl_cook::{DiehlCook2015, DiehlCookConfig};
//! use neurofi_data::SynthDigits;
//!
//! let data = SynthDigits::default().generate(20, 7);
//! let mut config = DiehlCookConfig::default();
//! config.sample_time_ms = 50.0; // abbreviated for the doctest
//! let mut net = DiehlCook2015::new(config, 42);
//! let counts = net.run_sample(data.image(0), true);
//! assert_eq!(counts.len(), 100);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod classify;
pub mod diehl_cook;
pub mod encoding;
pub mod learning;
pub mod monitor;
pub mod neurons;
pub mod tensor;
pub mod topology;
pub mod trainer;

pub use classify::{assign_labels, predict_all_activity};
pub use diehl_cook::{DiehlCook2015, DiehlCookConfig};
pub use encoding::PoissonEncoder;
pub use monitor::SpikeRaster;
pub use tensor::Matrix;
pub use trainer::{evaluate, train, train_with_hook, TrainOptions, TrainReport};
