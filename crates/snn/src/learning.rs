//! Post-pre STDP with synaptic traces (BindsNET's `PostPre` rule).
//!
//! On a presynaptic spike the weight is *depressed* in proportion to the
//! postsynaptic trace (the post neuron fired a while ago — anti-causal);
//! on a postsynaptic spike the weight is *potentiated* in proportion to
//! the presynaptic trace (the pre neuron fired a while ago — causal):
//!
//! ```text
//! pre spike  at i: w[i][:] -= nu_pre  · post_trace[:]
//! post spike at j: w[:][j] += nu_post · pre_trace[:]
//! ```
//!
//! The paper trains with `nu_pre = 4·10⁻⁴` and `nu_post = 2·10⁻⁴`
//! (§IV-A: "fixed learning rates of 0.0004 and 0.0002 for pre-synaptic
//! and post-synaptic events").

use crate::topology::DenseConnection;

/// The post-pre STDP rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostPreStdp {
    /// Learning rate for presynaptic-spike (depression) events.
    pub nu_pre: f32,
    /// Learning rate for postsynaptic-spike (potentiation) events.
    pub nu_post: f32,
}

impl PostPreStdp {
    /// The learning rates stated in the paper's §IV-A prose
    /// (0.0004 pre / 0.0002 post).
    ///
    /// Calibration note: with these rates a from-scratch single-pass run
    /// over 1000 images barely moves the weights and classification stays
    /// near chance (~12%); the BindsNET library the paper built on ships
    /// `nu = (1e-4, 1e-2)` ([`PostPreStdp::bindsnet`]), which reproduces
    /// the paper's 75.92% baseline (~79% on SynthDigits). The default
    /// network configuration therefore uses [`PostPreStdp::bindsnet`];
    /// see EXPERIMENTS.md for the comparison.
    pub fn paper() -> PostPreStdp {
        PostPreStdp {
            nu_pre: 4.0e-4,
            nu_post: 2.0e-4,
        }
    }

    /// BindsNET's shipped `DiehlAndCook2015` learning rates
    /// (`nu = (1e-4, 1e-2)`), which reproduce the paper's baseline.
    pub fn bindsnet() -> PostPreStdp {
        PostPreStdp {
            nu_pre: 1.0e-4,
            nu_post: 1.0e-2,
        }
    }

    /// Applies one step of plasticity to `conn` given this step's spikes
    /// and the (already-updated) traces, then clamps weights.
    ///
    /// # Panics
    /// Panics if slice lengths disagree with the connection shape.
    pub fn update(
        &self,
        conn: &mut DenseConnection,
        pre_spikes: &[f32],
        pre_traces: &[f32],
        post_spikes: &[f32],
        post_traces: &[f32],
    ) {
        assert_eq!(pre_spikes.len(), conn.w.rows(), "pre spike length mismatch");
        assert_eq!(pre_traces.len(), conn.w.rows(), "pre trace length mismatch");
        assert_eq!(
            post_spikes.len(),
            conn.w.cols(),
            "post spike length mismatch"
        );
        assert_eq!(
            post_traces.len(),
            conn.w.cols(),
            "post trace length mismatch"
        );

        // The result must equal "apply every update, then clamp the whole
        // matrix" (the original semantics), but the work must scale with
        // spike sparsity. Depression runs first and unclamped; the
        // potentiation clamp fuses into the strided column walk it already
        // pays for (each entry sees its row update before its column
        // update, and re-clamping is idempotent, so this is bit-identical);
        // finally the touched rows get one contiguous clamp pass. The
        // depression delta is staged once per step in a buffer owned by
        // the connection — the hot loop never allocates.
        let (lo, hi) = (conn.w_min, conn.w_max);
        let mut any_pre = false;
        if pre_spikes.iter().any(|&s| s > 0.0) {
            let delta = &mut conn.depression_scratch;
            for (d, &t) in delta.iter_mut().zip(post_traces) {
                *d = -self.nu_pre * t;
            }
            for (i, &s) in pre_spikes.iter().enumerate() {
                if s > 0.0 {
                    conn.w.add_into_row(i, &conn.depression_scratch);
                    any_pre = true;
                }
            }
        }
        let mut any_post = false;
        for (j, &s) in post_spikes.iter().enumerate() {
            if s > 0.0 {
                conn.w
                    .add_clamped_into_col(j, self.nu_post, pre_traces, lo, hi);
                any_post = true;
            }
        }
        if conn.maybe_unclamped {
            // Normalisation (or init) may have left out-of-range weights
            // anywhere; one full clamp restores the in-bounds invariant the
            // sparse path relies on.
            if any_pre || any_post {
                conn.clamp_weights();
            }
        } else if any_pre {
            for (i, &s) in pre_spikes.iter().enumerate() {
                if s > 0.0 {
                    conn.w.clamp_row(i, lo, hi);
                }
            }
        }
    }

    /// Like [`PostPreStdp::update`], but accumulates the weight changes
    /// into `deltas` instead of applying them — the building block of
    /// batched training, where updates from all batch elements are summed
    /// before touching the shared weights.
    ///
    /// # Panics
    /// Panics if `deltas` or the slices disagree with the connection
    /// shape.
    pub fn accumulate(
        &self,
        conn: &DenseConnection,
        deltas: &mut crate::tensor::Matrix,
        pre_spikes: &[f32],
        pre_traces: &[f32],
        post_spikes: &[f32],
        post_traces: &[f32],
    ) {
        assert_eq!(deltas.rows(), conn.w.rows(), "delta shape mismatch");
        assert_eq!(deltas.cols(), conn.w.cols(), "delta shape mismatch");
        assert_eq!(pre_spikes.len(), conn.w.rows(), "pre spike length mismatch");
        assert_eq!(pre_traces.len(), conn.w.rows(), "pre trace length mismatch");
        assert_eq!(
            post_spikes.len(),
            conn.w.cols(),
            "post spike length mismatch"
        );
        assert_eq!(
            post_traces.len(),
            conn.w.cols(),
            "post trace length mismatch"
        );
        for (i, &s) in pre_spikes.iter().enumerate() {
            if s > 0.0 {
                deltas.add_scaled_into_row(i, -self.nu_pre, post_traces);
            }
        }
        for (j, &s) in post_spikes.iter().enumerate() {
            if s > 0.0 {
                deltas.add_into_col(j, self.nu_post, pre_traces);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::DenseConnection;

    fn conn() -> DenseConnection {
        let mut c = DenseConnection::random(3, 2, 0.0, 0.0, 1.0, 0);
        for r in 0..3 {
            for col in 0..2 {
                c.w.set(r, col, 0.5);
            }
        }
        c
    }

    #[test]
    fn pre_spike_depresses_by_post_trace() {
        let mut c = conn();
        let rule = PostPreStdp {
            nu_pre: 0.1,
            nu_post: 0.0,
        };
        rule.update(
            &mut c,
            &[1.0, 0.0, 0.0],
            &[0.0; 3],
            &[0.0, 0.0],
            &[1.0, 0.5],
        );
        assert!((c.w.get(0, 0) - 0.4).abs() < 1e-6);
        assert!((c.w.get(0, 1) - 0.45).abs() < 1e-6);
        // Non-spiking rows untouched.
        assert_eq!(c.w.get(1, 0), 0.5);
    }

    #[test]
    fn post_spike_potentiates_by_pre_trace() {
        let mut c = conn();
        let rule = PostPreStdp {
            nu_pre: 0.0,
            nu_post: 0.2,
        };
        rule.update(
            &mut c,
            &[0.0; 3],
            &[1.0, 0.5, 0.0],
            &[0.0, 1.0],
            &[0.0, 0.0],
        );
        assert!((c.w.get(0, 1) - 0.7).abs() < 1e-6);
        assert!((c.w.get(1, 1) - 0.6).abs() < 1e-6);
        assert_eq!(c.w.get(2, 1), 0.5);
        // Non-spiking column untouched.
        assert_eq!(c.w.get(0, 0), 0.5);
    }

    #[test]
    fn weights_stay_clamped() {
        let mut c = conn();
        c.w_max = 0.55;
        c.w_min = 0.48;
        let rule = PostPreStdp {
            nu_pre: 1.0,
            nu_post: 1.0,
        };
        rule.update(
            &mut c,
            &[1.0, 1.0, 1.0],
            &[1.0; 3],
            &[1.0, 1.0],
            &[1.0, 1.0],
        );
        for &w in c.w.as_slice() {
            assert!((0.48..=0.55).contains(&w), "weight {w} escaped clamp");
        }
    }

    #[test]
    fn no_spikes_no_change() {
        let mut c = conn();
        let before = c.w.clone();
        PostPreStdp::paper().update(&mut c, &[0.0; 3], &[1.0; 3], &[0.0; 2], &[1.0; 2]);
        assert_eq!(c.w, before);
    }

    #[test]
    fn paper_rates() {
        let rule = PostPreStdp::paper();
        assert!((rule.nu_pre - 4.0e-4).abs() < 1e-12);
        assert!((rule.nu_post - 2.0e-4).abs() < 1e-12);
    }

    #[test]
    fn accumulate_matches_immediate_update_for_one_step() {
        let mut immediate = conn();
        let frozen = conn();
        let rule = PostPreStdp {
            nu_pre: 0.05,
            nu_post: 0.03,
        };
        let pre_s = [1.0, 0.0, 1.0];
        let pre_t = [1.0, 0.4, 0.2];
        let post_s = [0.0, 1.0];
        let post_t = [0.7, 0.1];
        rule.update(&mut immediate, &pre_s, &pre_t, &post_s, &post_t);
        let mut deltas = crate::tensor::Matrix::zeros(3, 2);
        rule.accumulate(&frozen, &mut deltas, &pre_s, &pre_t, &post_s, &post_t);
        for r in 0..3 {
            for c in 0..2 {
                let applied = frozen.w.get(r, c) + deltas.get(r, c);
                assert!(
                    (applied - immediate.w.get(r, c)).abs() < 1e-6,
                    "({r},{c}): {applied} vs {}",
                    immediate.w.get(r, c)
                );
            }
        }
    }

    #[test]
    fn sparse_clamp_matches_full_clamp_after_normalization() {
        // Normalisation can push weights above w_max anywhere in the
        // matrix; the first spiking update must fall back to a full clamp
        // so the sparsity-scaled path stays bit-identical to the original
        // clamp-everything semantics.
        let mut c = DenseConnection::random(4, 3, 0.3, 0.0, 0.4, 9).with_norm(3.0);
        c.clamp_weights();
        c.normalize(); // columns rescale; some weights now exceed 0.4
        assert!(c.w.as_slice().iter().any(|&w| w > c.w_max));
        let rule = PostPreStdp {
            nu_pre: 0.01,
            nu_post: 0.01,
        };
        // Only row 0 / column 1 spike, yet every weight must be clamped.
        rule.update(
            &mut c,
            &[1.0, 0.0, 0.0, 0.0],
            &[1.0; 4],
            &[0.0, 1.0, 0.0],
            &[1.0; 3],
        );
        for &w in c.w.as_slice() {
            assert!((c.w_min..=c.w_max).contains(&w), "weight {w} escaped clamp");
        }
        // Subsequent updates keep the invariant via the sparse path.
        rule.update(
            &mut c,
            &[0.0, 1.0, 0.0, 0.0],
            &[1.0; 4],
            &[0.0, 0.0, 1.0],
            &[1.0; 3],
        );
        for &w in c.w.as_slice() {
            assert!(
                (c.w_min..=c.w_max).contains(&w),
                "weight {w} escaped sparse clamp"
            );
        }
    }

    #[test]
    fn causal_pairing_net_potentiates() {
        // Pre fires, then post fires shortly after: the potentiation term
        // (driven by the fresh pre trace) must dominate.
        let mut c = conn();
        let rule = PostPreStdp {
            nu_pre: 0.01,
            nu_post: 0.01,
        };
        // Step 1: pre spike (post trace is zero — no depression).
        rule.update(
            &mut c,
            &[1.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0],
            &[0.0, 0.0],
            &[0.0, 0.0],
        );
        // Step 2: post spike with decayed pre trace 0.9.
        rule.update(
            &mut c,
            &[0.0; 3],
            &[0.9, 0.0, 0.0],
            &[1.0, 0.0],
            &[1.0, 0.0],
        );
        assert!(c.w.get(0, 0) > 0.5, "causal pair should potentiate");
    }
}
