//! Neuron-to-class assignment and the "all activity" classifier of
//! Diehl & Cook (2015).

/// Assigns each excitatory neuron to the digit class for which its mean
/// firing (spike count per presentation) was highest over the recorded
/// training samples.
///
/// `records` holds one spike-count vector per presented sample; `labels`
/// the corresponding digit labels. Neurons that never fired are assigned
/// class 0 (they then contribute nothing to prediction, matching
/// BindsNET).
///
/// # Panics
/// Panics if `records` and `labels` lengths differ, records are empty, or
/// the record widths are inconsistent.
pub fn assign_labels(records: &[Vec<f32>], labels: &[u8], n_classes: usize) -> Vec<usize> {
    assert_eq!(
        records.len(),
        labels.len(),
        "records/labels length mismatch"
    );
    assert!(!records.is_empty(), "cannot assign labels from no records");
    let n_neurons = records[0].len();
    assert!(
        records.iter().all(|r| r.len() == n_neurons),
        "inconsistent record widths"
    );
    let mut class_sums = vec![vec![0.0f64; n_neurons]; n_classes];
    let mut class_counts = vec![0usize; n_classes];
    for (record, &label) in records.iter().zip(labels) {
        let class = label as usize;
        assert!(class < n_classes, "label {label} out of range");
        class_counts[class] += 1;
        for (sum, &c) in class_sums[class].iter_mut().zip(record) {
            *sum += c as f64;
        }
    }
    (0..n_neurons)
        .map(|neuron| {
            let mut best = 0usize;
            let mut best_rate = f64::NEG_INFINITY;
            for class in 0..n_classes {
                let rate = if class_counts[class] > 0 {
                    class_sums[class][neuron] / class_counts[class] as f64
                } else {
                    0.0
                };
                if rate > best_rate {
                    best_rate = rate;
                    best = class;
                }
            }
            best
        })
        .collect()
}

/// Predicts the class of one presentation from excitatory spike counts
/// using the "all activity" rule: the class whose assigned neurons fired
/// most on average wins (ties break toward the lower class index).
///
/// # Panics
/// Panics if `counts` and `assignments` lengths differ or an assignment
/// is out of range.
pub fn predict_all_activity(counts: &[f32], assignments: &[usize], n_classes: usize) -> usize {
    assert_eq!(
        counts.len(),
        assignments.len(),
        "counts/assignments length mismatch"
    );
    let mut sums = vec![0.0f64; n_classes];
    let mut members = vec![0usize; n_classes];
    for (&count, &class) in counts.iter().zip(assignments) {
        assert!(class < n_classes, "assignment {class} out of range");
        sums[class] += count as f64;
        members[class] += 1;
    }
    let mut best = 0usize;
    let mut best_rate = f64::NEG_INFINITY;
    for class in 0..n_classes {
        let rate = if members[class] > 0 {
            sums[class] / members[class] as f64
        } else {
            f64::NEG_INFINITY
        };
        if rate > best_rate {
            best_rate = rate;
            best = class;
        }
    }
    best
}

/// Per-neuron class firing proportions, the basis of BindsNET's
/// "proportion weighting" prediction scheme.
///
/// `proportions[neuron][class]` is the fraction of the neuron's training
/// activity that occurred on samples of `class` (rows sum to 1 for
/// neurons that fired at all, and are all-zero otherwise).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassProportions {
    proportions: Vec<Vec<f64>>,
    n_classes: usize,
}

impl ClassProportions {
    /// Computes proportions from training spike records.
    ///
    /// # Panics
    /// Panics under the same conditions as [`assign_labels`].
    pub fn from_records(records: &[Vec<f32>], labels: &[u8], n_classes: usize) -> ClassProportions {
        assert_eq!(
            records.len(),
            labels.len(),
            "records/labels length mismatch"
        );
        assert!(
            !records.is_empty(),
            "cannot compute proportions from no records"
        );
        let n_neurons = records[0].len();
        let mut class_sums = vec![vec![0.0f64; n_classes]; n_neurons];
        let mut class_counts = vec![0usize; n_classes];
        for (record, &label) in records.iter().zip(labels) {
            assert_eq!(record.len(), n_neurons, "inconsistent record widths");
            let class = label as usize;
            assert!(class < n_classes, "label {label} out of range");
            class_counts[class] += 1;
            for (neuron, &c) in record.iter().enumerate() {
                class_sums[neuron][class] += c as f64;
            }
        }
        // Normalise by class frequency first (as assign_labels does), then
        // to proportions per neuron.
        let proportions = class_sums
            .into_iter()
            .map(|mut sums| {
                for (class, s) in sums.iter_mut().enumerate() {
                    if class_counts[class] > 0 {
                        *s /= class_counts[class] as f64;
                    }
                }
                let total: f64 = sums.iter().sum();
                if total > 0.0 {
                    for s in &mut sums {
                        *s /= total;
                    }
                }
                sums
            })
            .collect();
        ClassProportions {
            proportions,
            n_classes,
        }
    }

    /// Number of neurons covered.
    pub fn len(&self) -> usize {
        self.proportions.len()
    }

    /// True when no neurons are covered (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.proportions.is_empty()
    }

    /// Predicts the class of one presentation by weighting each neuron's
    /// spike count with its class proportions (BindsNET
    /// `proportion_weighting`). Ties break toward the lower class.
    ///
    /// # Panics
    /// Panics if `counts.len()` differs from the neuron count.
    pub fn predict(&self, counts: &[f32]) -> usize {
        assert_eq!(
            counts.len(),
            self.proportions.len(),
            "counts length mismatch"
        );
        let mut scores = vec![0.0f64; self.n_classes];
        for (neuron, &count) in counts.iter().enumerate() {
            if count > 0.0 {
                for (class, p) in self.proportions[neuron].iter().enumerate() {
                    scores[class] += p * count as f64;
                }
            }
        }
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(class, _)| class)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_by_mean_rate() {
        // Neuron 0 fires for class 1, neuron 1 for class 0.
        let records = vec![
            vec![5.0, 0.0], // label 1
            vec![0.0, 3.0], // label 0
            vec![4.0, 1.0], // label 1
        ];
        let labels = vec![1, 0, 1];
        let a = assign_labels(&records, &labels, 10);
        assert_eq!(a, vec![1, 0]);
    }

    #[test]
    fn silent_neurons_default_to_class_zero() {
        let records = vec![vec![0.0, 1.0]];
        let a = assign_labels(&records, &[3], 10);
        assert_eq!(a[0], 0);
        assert_eq!(a[1], 3);
    }

    #[test]
    fn assignment_uses_mean_not_sum() {
        // Class 2 has many weak presentations, class 7 one strong one;
        // mean rate must win for class 7.
        let records = vec![
            vec![1.0], // 2
            vec![1.0], // 2
            vec![1.0], // 2
            vec![9.0], // 7
        ];
        let a = assign_labels(&records, &[2, 2, 2, 7], 10);
        assert_eq!(a, vec![7]);
    }

    #[test]
    fn predicts_strongest_assigned_class() {
        let assignments = vec![0, 0, 1, 1, 2];
        let counts = vec![1.0, 1.0, 4.0, 2.0, 0.0];
        // class 0 mean 1.0, class 1 mean 3.0, class 2 mean 0.0.
        assert_eq!(predict_all_activity(&counts, &assignments, 10), 1);
    }

    #[test]
    fn unassigned_classes_never_win() {
        let assignments = vec![3, 3];
        let counts = vec![0.0, 0.0];
        // All-zero activity: class 3 (mean 0) beats unassigned classes.
        assert_eq!(predict_all_activity(&counts, &assignments, 10), 3);
    }

    #[test]
    fn tie_breaks_toward_lower_class() {
        let assignments = vec![4, 6];
        let counts = vec![2.0, 2.0];
        assert_eq!(predict_all_activity(&counts, &assignments, 10), 4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_inputs() {
        assign_labels(&[vec![1.0]], &[1, 2], 10);
    }

    #[test]
    fn proportions_rows_sum_to_one() {
        let records = vec![
            vec![5.0, 0.0], // label 1
            vec![5.0, 2.0], // label 0
        ];
        let p = ClassProportions::from_records(&records, &[1, 0], 10);
        assert_eq!(p.len(), 2);
        // Neuron 0 fired equally for both classes.
        let score0 = p.predict(&[1.0, 0.0]);
        let _ = score0; // ties allowed; just must not panic
                        // Neuron 1 fired only for class 0.
        assert_eq!(p.predict(&[0.0, 3.0]), 0);
    }

    #[test]
    fn proportion_prediction_uses_partial_selectivity() {
        // Neuron fires 75% for class 2, 25% for class 5; all-activity
        // assignment would give it wholly to class 2, but proportions keep
        // the 25% evidence for class 5.
        let records = vec![
            vec![3.0], // 2
            vec![1.0], // 5
        ];
        let p = ClassProportions::from_records(&records, &[2, 5], 10);
        assert_eq!(p.predict(&[4.0]), 2);
        // A second neuron exclusively voting 5 can outweigh it.
        let records = vec![
            vec![3.0, 0.0], // 2
            vec![1.0, 5.0], // 5
        ];
        let p = ClassProportions::from_records(&records, &[2, 5], 10);
        assert_eq!(p.predict(&[1.0, 4.0]), 5);
    }

    #[test]
    fn silent_network_predicts_class_zero() {
        let p = ClassProportions::from_records(&[vec![1.0, 1.0]], &[3], 10);
        assert_eq!(p.predict(&[0.0, 0.0]), 0);
    }
}
