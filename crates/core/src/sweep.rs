//! Grid-sweep engine regenerating the paper's accuracy surfaces
//! (Figs. 7b, 8a, 8b, 8c, 9a).

use neurofi_analog::PowerTransferTable;

use crate::attacks::{Attack, ExperimentSetup, GlobalVddAttack, InputCorruptionAttack, ThresholdAttack};
use crate::error::Error;
use crate::injection::TargetLayer;
use crate::threat::AttackKind;

/// Sweep parameters for the threshold attacks.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Relative threshold changes (the paper sweeps ±10%, ±20%).
    pub rel_changes: Vec<f64>,
    /// Layer fractions (the paper sweeps 0%–100%).
    pub fractions: Vec<f64>,
    /// Seeds; each cell is averaged over all of them.
    pub seeds: Vec<u64>,
}

impl SweepConfig {
    /// The paper's Fig. 8 grid.
    pub fn paper_grid() -> SweepConfig {
        SweepConfig {
            rel_changes: vec![-0.20, -0.10, 0.10, 0.20],
            fractions: vec![0.0, 0.25, 0.50, 0.75, 0.90, 1.0],
            seeds: vec![42],
        }
    }

    /// A small grid for smoke runs.
    pub fn quick_grid() -> SweepConfig {
        SweepConfig {
            rel_changes: vec![-0.20, 0.20],
            fractions: vec![0.0, 0.5, 1.0],
            seeds: vec![42],
        }
    }
}

/// One measured sweep cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCell {
    /// Relative threshold change of the cell.
    pub rel_change: f64,
    /// Affected layer fraction of the cell.
    pub fraction: f64,
    /// Mean attacked accuracy over seeds.
    pub accuracy: f64,
    /// Relative change versus baseline, percent.
    pub relative_change_percent: f64,
}

/// A complete sweep result.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Which attack was swept.
    pub kind: AttackKind,
    /// Mean baseline accuracy over seeds.
    pub baseline_accuracy: f64,
    /// All measured cells, in `rel_changes × fractions` order.
    pub cells: Vec<SweepCell>,
}

impl SweepResult {
    /// The cell with the most negative relative change.
    pub fn worst_case(&self) -> Option<&SweepCell> {
        self.cells.iter().min_by(|a, b| {
            a.relative_change_percent
                .partial_cmp(&b.relative_change_percent)
                .unwrap()
        })
    }

    /// Looks up a cell by its coordinates.
    pub fn cell(&self, rel_change: f64, fraction: f64) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            (c.rel_change - rel_change).abs() < 1e-9 && (c.fraction - fraction).abs() < 1e-9
        })
    }
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len().max(1) as f64
}

/// Sweeps a threshold attack over `rel_changes × fractions × seeds`.
/// `layer = None` sweeps Attack 4 (both layers; fractions other than 1.0
/// are skipped since the paper defines Attack 4 at 100%).
///
/// # Errors
/// Propagates attack failures.
pub fn threshold_sweep(
    setup: &ExperimentSetup,
    layer: Option<TargetLayer>,
    config: &SweepConfig,
) -> Result<SweepResult, Error> {
    let kind = match layer {
        Some(TargetLayer::Excitatory) => AttackKind::ExcitatoryThreshold,
        Some(TargetLayer::Inhibitory) => AttackKind::InhibitoryThreshold,
        None => AttackKind::BothLayerThreshold,
    };
    let per_seed: Vec<(ExperimentSetup, crate::attacks::RunMeasurement)> = config
        .seeds
        .iter()
        .map(|&seed| {
            let s = setup.with_seed(seed);
            let baseline = s.baseline();
            (s, baseline)
        })
        .collect();
    let baseline_accuracy = mean(
        &per_seed
            .iter()
            .map(|(_, b)| b.accuracy)
            .collect::<Vec<f64>>(),
    );

    let mut cells = Vec::new();
    for &rel in &config.rel_changes {
        for &fraction in &config.fractions {
            if layer.is_none() && (fraction - 1.0).abs() > 1e-9 {
                continue;
            }
            let mut accuracies = Vec::with_capacity(per_seed.len());
            for (s, baseline) in &per_seed {
                let attack = match layer {
                    Some(l) => ThresholdAttack {
                        layer: Some(l),
                        rel_change: rel,
                        fraction,
                    },
                    None => ThresholdAttack::both(rel),
                };
                let outcome = attack.run_with_baseline(s, *baseline)?;
                accuracies.push(outcome.attacked_accuracy);
            }
            let accuracy = mean(&accuracies);
            cells.push(SweepCell {
                rel_change: rel,
                fraction,
                accuracy,
                relative_change_percent: if baseline_accuracy > 0.0 {
                    (accuracy - baseline_accuracy) / baseline_accuracy * 100.0
                } else {
                    0.0
                },
            });
        }
    }
    Ok(SweepResult {
        kind,
        baseline_accuracy,
        cells,
    })
}

/// Sweeps Attack 1 over theta changes (Fig. 7b). Cells use the `fraction`
/// field to carry 1.0 (drivers are attacked globally).
///
/// # Errors
/// Propagates attack failures.
pub fn theta_sweep(
    setup: &ExperimentSetup,
    theta_changes: &[f64],
    seeds: &[u64],
) -> Result<SweepResult, Error> {
    let per_seed: Vec<(ExperimentSetup, crate::attacks::RunMeasurement)> = seeds
        .iter()
        .map(|&seed| {
            let s = setup.with_seed(seed);
            let baseline = s.baseline();
            (s, baseline)
        })
        .collect();
    let baseline_accuracy = mean(
        &per_seed
            .iter()
            .map(|(_, b)| b.accuracy)
            .collect::<Vec<f64>>(),
    );
    let mut cells = Vec::new();
    for &theta in theta_changes {
        let mut accuracies = Vec::new();
        for (s, baseline) in &per_seed {
            let outcome =
                InputCorruptionAttack::new(theta).run_with_baseline(s, *baseline)?;
            accuracies.push(outcome.attacked_accuracy);
        }
        let accuracy = mean(&accuracies);
        cells.push(SweepCell {
            rel_change: theta,
            fraction: 1.0,
            accuracy,
            relative_change_percent: if baseline_accuracy > 0.0 {
                (accuracy - baseline_accuracy) / baseline_accuracy * 100.0
            } else {
                0.0
            },
        });
    }
    Ok(SweepResult {
        kind: AttackKind::InputSpikeCorruption,
        baseline_accuracy,
        cells,
    })
}

/// Sweeps Attack 5 over supply voltages (Fig. 9a). Cells use `rel_change`
/// to carry the VDD value.
///
/// # Errors
/// Propagates attack failures.
pub fn vdd_sweep(
    setup: &ExperimentSetup,
    vdds: &[f64],
    transfer: &PowerTransferTable,
    seeds: &[u64],
) -> Result<SweepResult, Error> {
    let per_seed: Vec<(ExperimentSetup, crate::attacks::RunMeasurement)> = seeds
        .iter()
        .map(|&seed| {
            let s = setup.with_seed(seed);
            let baseline = s.baseline();
            (s, baseline)
        })
        .collect();
    let baseline_accuracy = mean(
        &per_seed
            .iter()
            .map(|(_, b)| b.accuracy)
            .collect::<Vec<f64>>(),
    );
    let mut cells = Vec::new();
    for &vdd in vdds {
        let mut accuracies = Vec::new();
        for (s, baseline) in &per_seed {
            let attack = GlobalVddAttack::new(vdd).with_transfer(transfer.clone());
            let outcome = attack.run_with_baseline(s, *baseline)?;
            accuracies.push(outcome.attacked_accuracy);
        }
        let accuracy = mean(&accuracies);
        cells.push(SweepCell {
            rel_change: vdd,
            fraction: 1.0,
            accuracy,
            relative_change_percent: if baseline_accuracy > 0.0 {
                (accuracy - baseline_accuracy) / baseline_accuracy * 100.0
            } else {
                0.0
            },
        });
    }
    Ok(SweepResult {
        kind: AttackKind::GlobalVdd,
        baseline_accuracy,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_setup() -> ExperimentSetup {
        let mut setup = ExperimentSetup::quick(11);
        setup.n_train = 100;
        setup.n_test = 50;
        setup.network.sample_time_ms = 80.0;
        setup.train_options.assignment_window = None;
        setup
    }

    #[test]
    fn zero_fraction_cells_match_baseline() {
        let setup = tiny_setup();
        let config = SweepConfig {
            rel_changes: vec![-0.2],
            fractions: vec![0.0],
            seeds: vec![1],
        };
        let result =
            threshold_sweep(&setup, Some(TargetLayer::Inhibitory), &config).unwrap();
        let cell = result.cell(-0.2, 0.0).unwrap();
        assert!((cell.accuracy - result.baseline_accuracy).abs() < 1e-9);
        assert!(cell.relative_change_percent.abs() < 1e-9);
    }

    #[test]
    fn both_layer_sweep_only_keeps_full_fraction() {
        let setup = tiny_setup();
        let config = SweepConfig {
            rel_changes: vec![-0.2, 0.2],
            fractions: vec![0.0, 0.5, 1.0],
            seeds: vec![1],
        };
        let result = threshold_sweep(&setup, None, &config).unwrap();
        assert_eq!(result.kind, AttackKind::BothLayerThreshold);
        assert_eq!(result.cells.len(), 2); // one per rel_change, only f=1.0
        assert!(result.cells.iter().all(|c| c.fraction == 1.0));
    }

    #[test]
    fn worst_case_finds_minimum() {
        let result = SweepResult {
            kind: AttackKind::InhibitoryThreshold,
            baseline_accuracy: 0.8,
            cells: vec![
                SweepCell {
                    rel_change: -0.2,
                    fraction: 1.0,
                    accuracy: 0.1,
                    relative_change_percent: -87.5,
                },
                SweepCell {
                    rel_change: 0.2,
                    fraction: 1.0,
                    accuracy: 0.6,
                    relative_change_percent: -25.0,
                },
            ],
        };
        assert_eq!(result.worst_case().unwrap().rel_change, -0.2);
    }

    #[test]
    fn theta_sweep_produces_one_cell_per_change() {
        let setup = tiny_setup();
        let result = theta_sweep(&setup, &[-0.2, 0.2], &[1]).unwrap();
        assert_eq!(result.cells.len(), 2);
        assert_eq!(result.kind, AttackKind::InputSpikeCorruption);
    }

    #[test]
    fn vdd_sweep_nominal_point_matches_baseline() {
        let setup = tiny_setup();
        let transfer = PowerTransferTable::paper_nominal();
        let result = vdd_sweep(&setup, &[1.0], &transfer, &[1]).unwrap();
        assert!((result.cells[0].accuracy - result.baseline_accuracy).abs() < 1e-9);
    }

    #[test]
    fn paper_grid_dimensions() {
        let g = SweepConfig::paper_grid();
        assert_eq!(g.rel_changes.len(), 4);
        assert!(g.fractions.contains(&1.0) && g.fractions.contains(&0.0));
    }
}
