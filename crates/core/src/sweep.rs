//! Grid-sweep engine regenerating the paper's accuracy surfaces
//! (Figs. 7b, 8a, 8b, 8c, 9a).
//!
//! The paper's surfaces are embarrassingly parallel grids — every cell
//! replays a full train-and-evaluate experiment — so the engine flattens
//! each grid into independent cell jobs and runs them on a zero-dependency
//! work-stealing pool ([`std::thread::scope`] workers pulling indices from
//! an atomic cursor). Three properties make the parallel path safe:
//!
//! * **Per-cell deterministic seeding** — every cell derives its
//!   experiments purely from `(setup, seed, cell coordinates)`, never from
//!   execution order.
//! * **Slot writes** — each job writes only its own result slot, so the
//!   assembled [`SweepResult`] is bit-identical to a serial run regardless
//!   of scheduling.
//! * **Memoised baselines** — the per-seed fault-free baseline is computed
//!   once in a [`BaselineCache`] and shared across every cell and every
//!   attack kind, instead of being re-run per sweep as the serial engine
//!   used to.
//!
//! The degree of parallelism is a property of the experiment
//! ([`ExperimentSetup::parallelism`], a [`Parallelism`] knob), defaulting
//! to one worker per available core.
//!
//! ## Pipeline stages
//!
//! Every sweep is the composition of three separable public stages, so
//! schedulers other than the in-process pool (notably the distributed
//! coordinator in `neurofi-dist`) can drive the same cells:
//!
//! 1. **Enumerate** — [`plan_threshold_sweep`] / [`plan_theta_sweep`] /
//!    [`plan_vdd_sweep`] flatten a grid into a [`SweepPlan`] of
//!    index-addressed [`CellJob`]s.
//! 2. **Execute** — [`execute_cell`] runs one [`CellJob`] against a
//!    [`BaselineCache`] and returns a [`CellResult`]; cells are
//!    independent and may run anywhere, in any order.
//! 3. **Assemble** — [`assemble_sweep`] writes each [`CellResult`] into
//!    its own slot and produces the final [`SweepResult`], rejecting
//!    missing, duplicate, or out-of-range cells.
//!
//! Because a cell's value is a pure function of `(setup, job)` and
//! assembly is slot-addressed, any schedule — serial, threaded, or
//! sharded across machines — produces a bit-identical [`SweepResult`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use neurofi_analog::PowerTransferTable;

use crate::attacks::{
    Attack, ExperimentSetup, GlobalVddAttack, InputCorruptionAttack, RunMeasurement,
    ThresholdAttack,
};
use crate::error::Error;
use crate::injection::TargetLayer;
use crate::threat::AttackKind;

/// Degree of parallelism for sweep execution.
///
/// Serial and parallel execution produce bit-identical results; this knob
/// only trades wall-clock time for CPU occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run every cell on the calling thread.
    Serial,
    /// Use exactly this many worker threads (0 is treated as 1).
    Threads(usize),
    /// One worker per available hardware thread (the default).
    #[default]
    Auto,
}

impl Parallelism {
    /// The number of workers this knob resolves to on this machine.
    pub fn worker_count(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// Runs `n` independent jobs — one per index — and returns their results
/// in index order.
///
/// With more than one worker, a scoped work-stealing pool claims indices
/// from a shared atomic cursor; each job writes only its own slot, so the
/// output is independent of scheduling. Panics in jobs propagate.
///
/// Public because it is the workspace's generic in-process pool: the
/// sweep engine runs cells on it, and `neurofi-dist` workers run their
/// assigned batches on it.
pub fn run_indexed<T, F>(n: usize, parallelism: Parallelism, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = parallelism.worker_count().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(job).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let result = job(index);
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed index stores a result")
        })
        .collect()
}

/// Memoised fault-free baselines, keyed by seed.
///
/// Baseline runs are the most expensive shared work of a sweep campaign:
/// every attack kind over the same [`ExperimentSetup`] needs the same
/// per-seed fault-free measurement. The cache computes each one exactly
/// once (in parallel when primed with several seeds) and hands out copies,
/// and is safe to share across threads.
#[derive(Debug)]
pub struct BaselineCache {
    setup: ExperimentSetup,
    entries: Mutex<HashMap<u64, RunMeasurement>>,
}

impl BaselineCache {
    /// Creates an empty cache bound to `setup` (seed fields are overridden
    /// per entry via [`ExperimentSetup::with_seed`]).
    pub fn new(setup: &ExperimentSetup) -> BaselineCache {
        BaselineCache {
            setup: setup.clone(),
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// The experiment setup this cache measures baselines for.
    pub fn setup(&self) -> &ExperimentSetup {
        &self.setup
    }

    /// Number of memoised baselines.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// True when no baseline has been measured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The baseline measurement for `seed`, computing and memoising it on
    /// first use. Identical to `setup.with_seed(seed).baseline()`.
    pub fn get(&self, seed: u64) -> RunMeasurement {
        if let Some(m) = self.entries.lock().expect("cache poisoned").get(&seed) {
            return *m;
        }
        // Computed outside the lock so concurrent cell jobs are never
        // serialised on a training run; a racing duplicate computes the
        // same deterministic value.
        let measured = self.setup.with_seed(seed).baseline();
        *self
            .entries
            .lock()
            .expect("cache poisoned")
            .entry(seed)
            .or_insert(measured)
    }

    /// Ensures every seed is memoised, computing missing ones in parallel
    /// per the setup's [`Parallelism`].
    pub fn prime(&self, seeds: &[u64]) {
        let missing: Vec<u64> = {
            let entries = self.entries.lock().expect("cache poisoned");
            let mut missing: Vec<u64> = seeds
                .iter()
                .copied()
                .filter(|s| !entries.contains_key(s))
                .collect();
            missing.sort_unstable();
            missing.dedup();
            missing
        };
        if missing.is_empty() {
            return;
        }
        let measured = run_indexed(missing.len(), self.setup.parallelism, |i| {
            self.setup.with_seed(missing[i]).baseline()
        });
        let mut entries = self.entries.lock().expect("cache poisoned");
        for (seed, m) in missing.into_iter().zip(measured) {
            entries.entry(seed).or_insert(m);
        }
    }
}

/// Sweep parameters for the threshold attacks.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Relative threshold changes (the paper sweeps ±10%, ±20%).
    pub rel_changes: Vec<f64>,
    /// Layer fractions (the paper sweeps 0%–100%).
    pub fractions: Vec<f64>,
    /// Seeds; each cell is averaged over all of them.
    pub seeds: Vec<u64>,
}

impl SweepConfig {
    /// The paper's Fig. 8 grid.
    pub fn paper_grid() -> SweepConfig {
        SweepConfig {
            rel_changes: vec![-0.20, -0.10, 0.10, 0.20],
            fractions: vec![0.0, 0.25, 0.50, 0.75, 0.90, 1.0],
            seeds: vec![42],
        }
    }

    /// A small grid for smoke runs.
    pub fn quick_grid() -> SweepConfig {
        SweepConfig {
            rel_changes: vec![-0.20, 0.20],
            fractions: vec![0.0, 0.5, 1.0],
            seeds: vec![42],
        }
    }
}

/// One measured sweep cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCell {
    /// Relative threshold change of the cell.
    pub rel_change: f64,
    /// Affected layer fraction of the cell.
    pub fraction: f64,
    /// Mean attacked accuracy over seeds.
    pub accuracy: f64,
    /// Relative change versus baseline, percent.
    pub relative_change_percent: f64,
}

/// A complete sweep result.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Which attack was swept.
    pub kind: AttackKind,
    /// Mean baseline accuracy over seeds.
    pub baseline_accuracy: f64,
    /// All measured cells, in `rel_changes × fractions` order.
    pub cells: Vec<SweepCell>,
}

impl SweepResult {
    /// The cell with the most negative relative change. NaN cells (which
    /// cannot occur from the built-in attacks but may reach this type via
    /// hand-assembled results) never panic and never win; if every cell is
    /// NaN, the first cell is returned.
    pub fn worst_case(&self) -> Option<&SweepCell> {
        self.cells
            .iter()
            .filter(|c| !c.relative_change_percent.is_nan())
            .min_by(|a, b| {
                a.relative_change_percent
                    .total_cmp(&b.relative_change_percent)
            })
            .or_else(|| self.cells.first())
    }

    /// Looks up a cell by its coordinates.
    pub fn cell(&self, rel_change: f64, fraction: f64) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            (c.rel_change - rel_change).abs() < 1e-9 && (c.fraction - fraction).abs() < 1e-9
        })
    }
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len().max(1) as f64
}

/// The attack one [`CellJob`] runs — a serializable, self-contained
/// description (no closures, no tables) so jobs can cross process and
/// machine boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellAttack {
    /// Attacks 2–4: threshold manipulation (`layer = None` is Attack 4,
    /// both layers at 100%).
    Threshold {
        /// Target layer; `None` attacks both layers.
        layer: Option<TargetLayer>,
        /// Relative threshold change.
        rel_change: f64,
        /// Affected layer fraction.
        fraction: f64,
    },
    /// Attack 1: input-drive (theta) corruption.
    Theta {
        /// Relative change of the per-spike membrane voltage.
        theta_change: f64,
    },
    /// Attack 5: global VDD manipulation (the executor supplies the
    /// VDD → parameter transfer table).
    Vdd {
        /// The manipulated supply voltage.
        vdd: f64,
    },
}

impl CellAttack {
    /// The `(rel_change, fraction)` coordinates this attack occupies in a
    /// [`SweepResult`] (theta and VDD sweeps carry their swept value in
    /// `rel_change` and pin `fraction` to 1.0, as the figures do).
    pub fn coordinates(&self) -> (f64, f64) {
        match *self {
            CellAttack::Threshold {
                rel_change,
                fraction,
                ..
            } => (rel_change, fraction),
            CellAttack::Theta { theta_change } => (theta_change, 1.0),
            CellAttack::Vdd { vdd } => (vdd, 1.0),
        }
    }
}

/// One unit of sweep work: which attack to run and which result slot the
/// measurement belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellJob {
    /// Slot in the final [`SweepResult::cells`] vector.
    pub index: usize,
    /// The attack to run.
    pub attack: CellAttack,
}

/// One executed cell: the measured [`SweepCell`] plus the slot it must be
/// written to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResult {
    /// Slot in the final [`SweepResult::cells`] vector.
    pub index: usize,
    /// The measured cell.
    pub cell: SweepCell,
}

/// The enumerated form of one sweep: every cell of the grid as an
/// independent, index-addressed [`CellJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// Which attack family the plan sweeps.
    pub kind: AttackKind,
    /// Seeds every cell averages over.
    pub seeds: Vec<u64>,
    /// The cells, in result-slot order (`jobs[i].index == i`).
    pub jobs: Vec<CellJob>,
}

/// Stage 1 (enumerate): flattens a threshold-attack grid into a
/// [`SweepPlan`]. `layer = None` plans Attack 4, keeping only the 100%
/// fraction as the paper defines it.
pub fn plan_threshold_sweep(layer: Option<TargetLayer>, config: &SweepConfig) -> SweepPlan {
    let kind = match layer {
        Some(TargetLayer::Excitatory) => AttackKind::ExcitatoryThreshold,
        Some(TargetLayer::Inhibitory) => AttackKind::InhibitoryThreshold,
        None => AttackKind::BothLayerThreshold,
    };
    let jobs = config
        .rel_changes
        .iter()
        .flat_map(|&rel| config.fractions.iter().map(move |&f| (rel, f)))
        .filter(|&(_, f)| layer.is_some() || (f - 1.0).abs() <= 1e-9)
        .enumerate()
        .map(|(index, (rel_change, fraction))| CellJob {
            index,
            attack: CellAttack::Threshold {
                layer,
                rel_change,
                fraction,
            },
        })
        .collect();
    SweepPlan {
        kind,
        seeds: config.seeds.clone(),
        jobs,
    }
}

/// Stage 1 (enumerate): one [`CellJob`] per theta change (Fig. 7b).
pub fn plan_theta_sweep(theta_changes: &[f64], seeds: &[u64]) -> SweepPlan {
    SweepPlan {
        kind: AttackKind::InputSpikeCorruption,
        seeds: seeds.to_vec(),
        jobs: theta_changes
            .iter()
            .enumerate()
            .map(|(index, &theta_change)| CellJob {
                index,
                attack: CellAttack::Theta { theta_change },
            })
            .collect(),
    }
}

/// Stage 1 (enumerate): one [`CellJob`] per supply voltage (Fig. 9a).
pub fn plan_vdd_sweep(vdds: &[f64], seeds: &[u64]) -> SweepPlan {
    SweepPlan {
        kind: AttackKind::GlobalVdd,
        seeds: seeds.to_vec(),
        jobs: vdds
            .iter()
            .enumerate()
            .map(|(index, &vdd)| CellJob {
                index,
                attack: CellAttack::Vdd { vdd },
            })
            .collect(),
    }
}

/// Primes `cache` for `seeds` and returns the mean baseline accuracy —
/// the reference every cell's relative change is computed against.
/// Deterministic: any executor (local or remote) derives the same value
/// from the same setup.
pub fn mean_baseline_accuracy(cache: &BaselineCache, seeds: &[u64]) -> f64 {
    cache.prime(seeds);
    let per_seed: Vec<f64> = seeds.iter().map(|&s| cache.get(s).accuracy).collect();
    mean(&per_seed)
}

/// Builds the final cell from a measured mean accuracy, exactly as the
/// serial engine always has (shared so every execution path is
/// bit-identical by construction).
fn finish_cell(rel_change: f64, fraction: f64, accuracy: f64, baseline_accuracy: f64) -> SweepCell {
    SweepCell {
        rel_change,
        fraction,
        accuracy,
        relative_change_percent: if baseline_accuracy > 0.0 {
            (accuracy - baseline_accuracy) / baseline_accuracy * 100.0
        } else {
            0.0
        },
    }
}

/// Measures one grid cell: runs the attack for every seed (reusing the
/// memoised baselines) and averages.
fn measure_cell<A: Attack>(
    cache: &BaselineCache,
    seeds: &[u64],
    rel_change: f64,
    fraction: f64,
    baseline_accuracy: f64,
    attack: &A,
) -> Result<SweepCell, Error> {
    let mut accuracies = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let setup = cache.setup().with_seed(seed);
        let baseline = cache.get(seed);
        let outcome = attack.run_with_baseline(&setup, baseline)?;
        accuracies.push(outcome.attacked_accuracy);
    }
    Ok(finish_cell(
        rel_change,
        fraction,
        mean(&accuracies),
        baseline_accuracy,
    ))
}

/// Stage 2 (execute): measures one [`CellJob`] against a
/// [`BaselineCache`]. VDD jobs need the `transfer` table the campaign was
/// characterised with.
///
/// Jobs are validated rather than trusted (they may arrive over a wire):
/// impossible theta changes and non-positive VDDs are rejected as
/// [`Error::Invalid`] instead of panicking.
///
/// # Errors
/// Propagates attack failures; rejects invalid job parameters and VDD
/// jobs without a transfer table.
pub fn execute_cell(
    cache: &BaselineCache,
    seeds: &[u64],
    baseline_accuracy: f64,
    job: &CellJob,
    transfer: Option<&PowerTransferTable>,
) -> Result<CellResult, Error> {
    let (rel_change, fraction) = job.attack.coordinates();
    let cell = match job.attack {
        CellAttack::Threshold {
            layer,
            rel_change,
            fraction,
        } => {
            if !(0.0..=1.0).contains(&fraction) || !rel_change.is_finite() {
                return Err(Error::Invalid(format!(
                    "threshold cell {} has invalid parameters (rel_change {rel_change}, \
                     fraction {fraction})",
                    job.index
                )));
            }
            let attack = match layer {
                Some(l) => ThresholdAttack {
                    layer: Some(l),
                    rel_change,
                    fraction,
                },
                None => ThresholdAttack::both(rel_change),
            };
            measure_cell(
                cache,
                seeds,
                rel_change,
                fraction,
                baseline_accuracy,
                &attack,
            )?
        }
        CellAttack::Theta { theta_change } => {
            if !(theta_change > -1.0 && theta_change.is_finite()) {
                return Err(Error::Invalid(format!(
                    "theta cell {} has impossible change {theta_change}",
                    job.index
                )));
            }
            measure_cell(
                cache,
                seeds,
                rel_change,
                fraction,
                baseline_accuracy,
                &InputCorruptionAttack::new(theta_change),
            )?
        }
        CellAttack::Vdd { vdd } => {
            if !(vdd.is_finite() && vdd > 0.0) {
                return Err(Error::Invalid(format!(
                    "vdd cell {} has non-positive supply {vdd}",
                    job.index
                )));
            }
            let transfer = transfer.ok_or_else(|| {
                Error::Invalid(format!(
                    "vdd cell {} needs a power-transfer table",
                    job.index
                ))
            })?;
            let attack = GlobalVddAttack::new(vdd).with_transfer(transfer.clone());
            measure_cell(
                cache,
                seeds,
                rel_change,
                fraction,
                baseline_accuracy,
                &attack,
            )?
        }
    };
    Ok(CellResult {
        index: job.index,
        cell,
    })
}

/// Stage 3 (assemble): writes every [`CellResult`] into its slot and
/// returns the completed [`SweepResult`]. Results may arrive in any order
/// (the in-process pool and the distributed coordinator both feed this);
/// duplicate slots must carry identical cells (retries after a lost
/// acknowledgement re-deliver the same deterministic measurement).
///
/// # Errors
/// Rejects out-of-range indices, conflicting duplicates, and missing
/// cells — an incomplete campaign never assembles silently.
pub fn assemble_sweep(
    kind: AttackKind,
    baseline_accuracy: f64,
    n_cells: usize,
    results: impl IntoIterator<Item = CellResult>,
) -> Result<SweepResult, Error> {
    let mut slots: Vec<Option<SweepCell>> = vec![None; n_cells];
    for result in results {
        let slot = slots.get_mut(result.index).ok_or_else(|| {
            Error::Invalid(format!(
                "cell index {} outside the {n_cells}-cell grid",
                result.index
            ))
        })?;
        match slot {
            Some(existing) if *existing != result.cell => {
                return Err(Error::Invalid(format!(
                    "conflicting duplicate results for cell {}",
                    result.index
                )));
            }
            _ => *slot = Some(result.cell),
        }
    }
    let cells = slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.ok_or_else(|| Error::Invalid(format!("cell {index} was never measured")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SweepResult {
        kind,
        baseline_accuracy,
        cells,
    })
}

/// Runs every job of `plan` on the in-process pool and assembles the
/// result — the shared backend of the `*_sweep_cached` entry points.
fn run_plan(
    cache: &BaselineCache,
    plan: &SweepPlan,
    transfer: Option<&PowerTransferTable>,
) -> Result<SweepResult, Error> {
    let baseline_accuracy = mean_baseline_accuracy(cache, &plan.seeds);
    let measured = run_indexed(plan.jobs.len(), cache.setup().parallelism, |i| {
        execute_cell(
            cache,
            &plan.seeds,
            baseline_accuracy,
            &plan.jobs[i],
            transfer,
        )
    });
    let results = measured.into_iter().collect::<Result<Vec<_>, _>>()?;
    assemble_sweep(plan.kind, baseline_accuracy, plan.jobs.len(), results)
}

/// Sweeps a threshold attack over `rel_changes × fractions × seeds`.
/// `layer = None` sweeps Attack 4 (both layers; fractions other than 1.0
/// are skipped since the paper defines Attack 4 at 100%).
///
/// Computes its own baselines; use [`threshold_sweep_cached`] to share a
/// [`BaselineCache`] across several sweeps of the same setup.
///
/// # Errors
/// Propagates attack failures.
pub fn threshold_sweep(
    setup: &ExperimentSetup,
    layer: Option<TargetLayer>,
    config: &SweepConfig,
) -> Result<SweepResult, Error> {
    threshold_sweep_cached(&BaselineCache::new(setup), layer, config)
}

/// [`threshold_sweep`] against a shared [`BaselineCache`] (the setup is
/// the cache's): per-seed baselines are computed at most once across all
/// attack kinds swept through the same cache.
///
/// # Errors
/// Propagates attack failures.
pub fn threshold_sweep_cached(
    cache: &BaselineCache,
    layer: Option<TargetLayer>,
    config: &SweepConfig,
) -> Result<SweepResult, Error> {
    run_plan(cache, &plan_threshold_sweep(layer, config), None)
}

/// Sweeps Attack 1 over theta changes (Fig. 7b). Cells use the `fraction`
/// field to carry 1.0 (drivers are attacked globally).
///
/// # Errors
/// Propagates attack failures.
pub fn theta_sweep(
    setup: &ExperimentSetup,
    theta_changes: &[f64],
    seeds: &[u64],
) -> Result<SweepResult, Error> {
    theta_sweep_cached(&BaselineCache::new(setup), theta_changes, seeds)
}

/// [`theta_sweep`] against a shared [`BaselineCache`].
///
/// # Errors
/// Propagates attack failures.
pub fn theta_sweep_cached(
    cache: &BaselineCache,
    theta_changes: &[f64],
    seeds: &[u64],
) -> Result<SweepResult, Error> {
    run_plan(cache, &plan_theta_sweep(theta_changes, seeds), None)
}

/// Sweeps Attack 5 over supply voltages (Fig. 9a). Cells use `rel_change`
/// to carry the VDD value.
///
/// # Errors
/// Propagates attack failures.
pub fn vdd_sweep(
    setup: &ExperimentSetup,
    vdds: &[f64],
    transfer: &PowerTransferTable,
    seeds: &[u64],
) -> Result<SweepResult, Error> {
    vdd_sweep_cached(&BaselineCache::new(setup), vdds, transfer, seeds)
}

/// [`vdd_sweep`] against a shared [`BaselineCache`].
///
/// # Errors
/// Propagates attack failures.
pub fn vdd_sweep_cached(
    cache: &BaselineCache,
    vdds: &[f64],
    transfer: &PowerTransferTable,
    seeds: &[u64],
) -> Result<SweepResult, Error> {
    run_plan(cache, &plan_vdd_sweep(vdds, seeds), Some(transfer))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_setup() -> ExperimentSetup {
        let mut setup = ExperimentSetup::quick(11);
        setup.n_train = 100;
        setup.n_test = 50;
        setup.network.sample_time_ms = 80.0;
        setup.train_options.assignment_window = None;
        setup
    }

    #[test]
    fn zero_fraction_cells_match_baseline() {
        let setup = tiny_setup();
        let config = SweepConfig {
            rel_changes: vec![-0.2],
            fractions: vec![0.0],
            seeds: vec![1],
        };
        let result = threshold_sweep(&setup, Some(TargetLayer::Inhibitory), &config).unwrap();
        let cell = result.cell(-0.2, 0.0).unwrap();
        assert!((cell.accuracy - result.baseline_accuracy).abs() < 1e-9);
        assert!(cell.relative_change_percent.abs() < 1e-9);
    }

    #[test]
    fn both_layer_sweep_only_keeps_full_fraction() {
        let setup = tiny_setup();
        let config = SweepConfig {
            rel_changes: vec![-0.2, 0.2],
            fractions: vec![0.0, 0.5, 1.0],
            seeds: vec![1],
        };
        let result = threshold_sweep(&setup, None, &config).unwrap();
        assert_eq!(result.kind, AttackKind::BothLayerThreshold);
        assert_eq!(result.cells.len(), 2); // one per rel_change, only f=1.0
        assert!(result.cells.iter().all(|c| c.fraction == 1.0));
    }

    #[test]
    fn worst_case_finds_minimum() {
        let result = SweepResult {
            kind: AttackKind::InhibitoryThreshold,
            baseline_accuracy: 0.8,
            cells: vec![
                SweepCell {
                    rel_change: -0.2,
                    fraction: 1.0,
                    accuracy: 0.1,
                    relative_change_percent: -87.5,
                },
                SweepCell {
                    rel_change: 0.2,
                    fraction: 1.0,
                    accuracy: 0.6,
                    relative_change_percent: -25.0,
                },
            ],
        };
        assert_eq!(result.worst_case().unwrap().rel_change, -0.2);
    }

    #[test]
    fn worst_case_survives_nan_cells() {
        // A NaN cell must neither panic (the old partial_cmp().unwrap()
        // did) nor win the minimum.
        let nan_cell = SweepCell {
            rel_change: 0.1,
            fraction: 1.0,
            accuracy: f64::NAN,
            relative_change_percent: f64::NAN,
        };
        let real_cell = SweepCell {
            rel_change: -0.1,
            fraction: 1.0,
            accuracy: 0.5,
            relative_change_percent: -37.5,
        };
        // Negative NaN sorts before -inf under total_cmp; it must still
        // never beat a real cell.
        let neg_nan_cell = SweepCell {
            relative_change_percent: f64::NAN.copysign(-1.0),
            ..nan_cell
        };
        let result = SweepResult {
            kind: AttackKind::ExcitatoryThreshold,
            baseline_accuracy: 0.8,
            cells: vec![nan_cell, neg_nan_cell, real_cell],
        };
        assert_eq!(result.worst_case().unwrap().rel_change, -0.1);
        let all_nan = SweepResult {
            kind: AttackKind::ExcitatoryThreshold,
            baseline_accuracy: 0.8,
            cells: vec![nan_cell],
        };
        assert!(all_nan
            .worst_case()
            .unwrap()
            .relative_change_percent
            .is_nan());
    }

    #[test]
    fn theta_sweep_produces_one_cell_per_change() {
        let setup = tiny_setup();
        let result = theta_sweep(&setup, &[-0.2, 0.2], &[1]).unwrap();
        assert_eq!(result.cells.len(), 2);
        assert_eq!(result.kind, AttackKind::InputSpikeCorruption);
    }

    #[test]
    fn vdd_sweep_nominal_point_matches_baseline() {
        let setup = tiny_setup();
        let transfer = PowerTransferTable::paper_nominal();
        let result = vdd_sweep(&setup, &[1.0], &transfer, &[1]).unwrap();
        assert!((result.cells[0].accuracy - result.baseline_accuracy).abs() < 1e-9);
    }

    #[test]
    fn paper_grid_dimensions() {
        let g = SweepConfig::paper_grid();
        assert_eq!(g.rel_changes.len(), 4);
        assert!(g.fractions.contains(&1.0) && g.fractions.contains(&0.0));
    }

    #[test]
    fn parallel_sweeps_are_bit_identical_to_serial() {
        let mut setup = tiny_setup();
        setup.n_train = 60;
        setup.n_test = 30;
        setup.network.sample_time_ms = 60.0;
        let config = SweepConfig {
            rel_changes: vec![-0.2, 0.2],
            fractions: vec![0.0, 1.0],
            seeds: vec![1, 2],
        };
        let run = |parallelism: Parallelism| {
            let s = setup.clone().with_parallelism(parallelism);
            threshold_sweep(&s, Some(TargetLayer::Inhibitory), &config).unwrap()
        };
        let serial = run(Parallelism::Serial);
        for threads in [2, 4] {
            let parallel = run(Parallelism::Threads(threads));
            assert_eq!(
                serial.baseline_accuracy.to_bits(),
                parallel.baseline_accuracy.to_bits(),
                "baseline diverged at {threads} threads"
            );
            assert_eq!(serial.cells.len(), parallel.cells.len());
            for (s, p) in serial.cells.iter().zip(&parallel.cells) {
                assert_eq!(s.rel_change.to_bits(), p.rel_change.to_bits());
                assert_eq!(s.fraction.to_bits(), p.fraction.to_bits());
                assert_eq!(
                    s.accuracy.to_bits(),
                    p.accuracy.to_bits(),
                    "cell ({}, {}) diverged at {threads} threads",
                    s.rel_change,
                    s.fraction
                );
                assert_eq!(
                    s.relative_change_percent.to_bits(),
                    p.relative_change_percent.to_bits()
                );
            }
        }
    }

    #[test]
    fn baseline_cache_matches_fresh_baseline_run() {
        let mut setup = tiny_setup();
        setup.n_train = 60;
        setup.n_test = 30;
        let cache = BaselineCache::new(&setup);
        let cached = cache.get(7);
        let fresh = setup.with_seed(7).baseline();
        assert_eq!(cached, fresh);
        // Repeated lookups hit the memo (still the same value).
        assert_eq!(cache.get(7), fresh);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn baseline_cache_is_shared_across_attack_kinds() {
        let mut setup = tiny_setup();
        setup.n_train = 60;
        setup.n_test = 30;
        setup.network.sample_time_ms = 60.0;
        let config = SweepConfig {
            rel_changes: vec![-0.2],
            fractions: vec![1.0],
            seeds: vec![3],
        };
        let cache = BaselineCache::new(&setup);
        let el = threshold_sweep_cached(&cache, Some(TargetLayer::Excitatory), &config).unwrap();
        let il = threshold_sweep_cached(&cache, Some(TargetLayer::Inhibitory), &config).unwrap();
        let both = threshold_sweep_cached(&cache, None, &config).unwrap();
        // One seed, three attack kinds: the baseline was measured once.
        assert_eq!(cache.len(), 1);
        assert_eq!(
            el.baseline_accuracy.to_bits(),
            il.baseline_accuracy.to_bits()
        );
        assert_eq!(
            el.baseline_accuracy.to_bits(),
            both.baseline_accuracy.to_bits()
        );
    }

    #[test]
    fn parallelism_worker_counts() {
        assert_eq!(Parallelism::Serial.worker_count(), 1);
        assert_eq!(Parallelism::Threads(0).worker_count(), 1);
        assert_eq!(Parallelism::Threads(6).worker_count(), 6);
        assert!(Parallelism::Auto.worker_count() >= 1);
    }

    #[test]
    fn plans_enumerate_in_slot_order() {
        let config = SweepConfig {
            rel_changes: vec![-0.2, 0.2],
            fractions: vec![0.0, 0.5, 1.0],
            seeds: vec![1, 2],
        };
        let plan = plan_threshold_sweep(Some(TargetLayer::Inhibitory), &config);
        assert_eq!(plan.kind, AttackKind::InhibitoryThreshold);
        assert_eq!(plan.jobs.len(), 6);
        assert!(plan.jobs.iter().enumerate().all(|(i, j)| j.index == i));
        // Attack 4 keeps only the 100% fraction.
        let both = plan_threshold_sweep(None, &config);
        assert_eq!(both.jobs.len(), 2);
        assert!(both.jobs.iter().all(|j| j.attack.coordinates().1 == 1.0));
        let theta = plan_theta_sweep(&[-0.2, 0.2], &[1]);
        assert_eq!(theta.kind, AttackKind::InputSpikeCorruption);
        assert_eq!(theta.jobs.len(), 2);
        let vdd = plan_vdd_sweep(&[0.8, 1.0], &[1]);
        assert_eq!(vdd.kind, AttackKind::GlobalVdd);
        assert_eq!(vdd.jobs[1].attack, CellAttack::Vdd { vdd: 1.0 });
    }

    #[test]
    fn staged_pipeline_matches_monolithic_sweep() {
        let mut setup = tiny_setup();
        setup.n_train = 60;
        setup.n_test = 30;
        setup.network.sample_time_ms = 60.0;
        let config = SweepConfig {
            rel_changes: vec![-0.2, 0.2],
            fractions: vec![0.0, 1.0],
            seeds: vec![1],
        };
        let cache = BaselineCache::new(&setup);
        let reference =
            threshold_sweep_cached(&cache, Some(TargetLayer::Inhibitory), &config).unwrap();

        // Hand-drive the stages, executing cells in *reverse* order to
        // prove assembly is slot-addressed, not arrival-ordered.
        let plan = plan_threshold_sweep(Some(TargetLayer::Inhibitory), &config);
        let baseline_accuracy = mean_baseline_accuracy(&cache, &plan.seeds);
        let mut results = Vec::new();
        for job in plan.jobs.iter().rev() {
            results.push(execute_cell(&cache, &plan.seeds, baseline_accuracy, job, None).unwrap());
        }
        let staged =
            assemble_sweep(plan.kind, baseline_accuracy, plan.jobs.len(), results).unwrap();
        assert_eq!(staged.cells.len(), reference.cells.len());
        for (a, b) in staged.cells.iter().zip(&reference.cells) {
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
            assert_eq!(
                a.relative_change_percent.to_bits(),
                b.relative_change_percent.to_bits()
            );
        }
    }

    #[test]
    fn assemble_rejects_incomplete_and_conflicting_results() {
        let cell = SweepCell {
            rel_change: -0.2,
            fraction: 1.0,
            accuracy: 0.5,
            relative_change_percent: -10.0,
        };
        let ok = assemble_sweep(
            AttackKind::InhibitoryThreshold,
            0.55,
            2,
            vec![
                CellResult { index: 1, cell },
                CellResult { index: 0, cell },
                // Identical duplicate (a retried delivery) is tolerated.
                CellResult { index: 0, cell },
            ],
        )
        .unwrap();
        assert_eq!(ok.cells.len(), 2);

        let missing = assemble_sweep(
            AttackKind::InhibitoryThreshold,
            0.55,
            2,
            vec![CellResult { index: 0, cell }],
        );
        assert!(missing.is_err());

        let out_of_range = assemble_sweep(
            AttackKind::InhibitoryThreshold,
            0.55,
            2,
            vec![CellResult { index: 7, cell }],
        );
        assert!(out_of_range.is_err());

        let conflicting = assemble_sweep(
            AttackKind::InhibitoryThreshold,
            0.55,
            1,
            vec![
                CellResult { index: 0, cell },
                CellResult {
                    index: 0,
                    cell: SweepCell {
                        accuracy: 0.9,
                        ..cell
                    },
                },
            ],
        );
        assert!(conflicting.is_err());
    }

    #[test]
    fn execute_cell_rejects_invalid_wire_jobs() {
        let setup = tiny_setup();
        let cache = BaselineCache::new(&setup);
        let bad_theta = CellJob {
            index: 0,
            attack: CellAttack::Theta { theta_change: -2.0 },
        };
        assert!(execute_cell(&cache, &[1], 0.5, &bad_theta, None).is_err());
        let bad_fraction = CellJob {
            index: 0,
            attack: CellAttack::Threshold {
                layer: Some(TargetLayer::Inhibitory),
                rel_change: -0.2,
                fraction: 1.5,
            },
        };
        assert!(execute_cell(&cache, &[1], 0.5, &bad_fraction, None).is_err());
        let vdd_without_table = CellJob {
            index: 0,
            attack: CellAttack::Vdd { vdd: 0.8 },
        };
        assert!(execute_cell(&cache, &[1], 0.5, &vdd_without_table, None).is_err());
        let bad_vdd = CellJob {
            index: 0,
            attack: CellAttack::Vdd { vdd: -0.1 },
        };
        assert!(execute_cell(&cache, &[1], 0.5, &bad_vdd, None).is_err());
    }

    #[test]
    fn run_indexed_preserves_index_order() {
        for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
            let out = run_indexed(64, parallelism, |i| i * 3);
            assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
        }
        let empty = run_indexed(0, Parallelism::Threads(4), |i| i);
        assert!(empty.is_empty());
    }
}
