//! Grid-sweep engine regenerating the paper's accuracy surfaces
//! (Figs. 7b, 8a, 8b, 8c, 9a) — and any N-axis scenario beyond them.
//!
//! Every sweep is an embarrassingly parallel grid: each cell replays a
//! full train-and-evaluate experiment, so the engine flattens a grid
//! into independent cell jobs and runs them on a zero-dependency
//! work-stealing pool ([`std::thread::scope`] workers pulling indices
//! from an atomic cursor). Three properties make the parallel path safe:
//!
//! * **Per-cell deterministic seeding** — every cell derives its
//!   experiments purely from `(setup, seed, cell parameters)`, never from
//!   execution order.
//! * **Slot writes** — each job writes only its own result slot, so the
//!   assembled [`SweepResult`] is bit-identical to a serial run regardless
//!   of scheduling.
//! * **Memoised baselines** — the per-seed fault-free baseline is computed
//!   once in a [`BaselineCache`] and shared across every cell and every
//!   attack kind.
//!
//! The degree of parallelism is a property of the experiment
//! ([`ExperimentSetup::parallelism`], a [`Parallelism`] knob), defaulting
//! to one worker per available core.
//!
//! ## Pipeline stages
//!
//! Every sweep is the composition of three separable public stages, so
//! schedulers other than the in-process pool (notably the distributed
//! coordinator in `neurofi-dist`) can drive the same cells:
//!
//! 1. **Enumerate** — a declarative
//!    [`ScenarioSpec`](crate::scenario::ScenarioSpec) (an attack family
//!    plus an ordered list of typed axes — `rel_change`, `fraction`,
//!    `theta_change`, `vdd`, `layer`, `polarity`, `seed`) is flattened
//!    by **one generic planner** ([`ScenarioSpec::plan`]) into a
//!    [`SweepPlan`] of index-addressed [`CellJob`]s, row-major over the
//!    axes. The paper's three grids are thin wrappers
//!    ([`plan_threshold_sweep`] / [`plan_theta_sweep`] /
//!    [`plan_vdd_sweep`]) that build the corresponding spec; custom
//!    cross products (e.g. threshold × VDD) go through the same planner
//!    with no engine changes.
//! 2. **Execute** — [`execute_cell`] runs one [`CellJob`] against a
//!    [`BaselineCache`] and returns a [`CellResult`]; cells are
//!    independent and may run anywhere, in any order. A job's
//!    [`CellAttack`] is a *resolved composite*: its threshold, theta,
//!    and VDD components stack into one
//!    [`FaultPlan`](crate::injection::FaultPlan).
//! 3. **Assemble** — [`assemble_sweep`] writes each [`CellResult`] into
//!    its own slot and produces the final [`SweepResult`], rejecting
//!    missing, duplicate, or out-of-range cells. The result carries the
//!    plan's resolved axes, so cells are addressed by **axis indices**
//!    ([`SweepResult::cell_at`]) — not by float comparisons.
//!
//! Because a cell's value is a pure function of `(setup, job)` and
//! assembly is slot-addressed, any schedule — serial, threaded, or
//! sharded across machines — produces a bit-identical [`SweepResult`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use neurofi_analog::{Engine, LayerNetlist, PowerTransferTable};

use crate::attacks::{Attack, ExperimentSetup, RunMeasurement};
use crate::detection::{self, DummyNeuronDetector};
use crate::error::Error;
use crate::injection::{
    DriveFault, FaultPlan, Selection, TargetLayer, ThresholdConvention, ThresholdFault,
};
use crate::scenario::{AttackFamily, Axis, DefenseSel, DetectorSel, ScenarioSpec};
use crate::threat::AttackKind;

/// Degree of parallelism for sweep execution.
///
/// Serial and parallel execution produce bit-identical results; this knob
/// only trades wall-clock time for CPU occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run every cell on the calling thread.
    Serial,
    /// Use exactly this many worker threads (0 is treated as 1).
    Threads(usize),
    /// One worker per available hardware thread (the default).
    #[default]
    Auto,
}

impl Parallelism {
    /// The number of workers this knob resolves to on this machine.
    pub fn worker_count(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// Runs `n` independent jobs — one per index — and returns their results
/// in index order.
///
/// With more than one worker, a scoped work-stealing pool claims indices
/// from a shared atomic cursor; each job writes only its own slot, so the
/// output is independent of scheduling. Panics in jobs propagate.
///
/// Public because it is the workspace's generic in-process pool: the
/// sweep engine runs cells on it, and `neurofi-dist` workers run their
/// assigned batches on it.
pub fn run_indexed<T, F>(n: usize, parallelism: Parallelism, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = parallelism.worker_count().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(job).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let result = job(index);
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed index stores a result")
        })
        .collect()
}

/// Memoised fault-free baselines, keyed by seed.
///
/// Baseline runs are the most expensive shared work of a sweep campaign:
/// every attack kind over the same [`ExperimentSetup`] needs the same
/// per-seed fault-free measurement. The cache computes each one exactly
/// once (in parallel when primed with several seeds) and hands out copies,
/// and is safe to share across threads.
#[derive(Debug)]
pub struct BaselineCache {
    setup: ExperimentSetup,
    entries: Mutex<BTreeMap<u64, RunMeasurement>>,
}

impl BaselineCache {
    /// Creates an empty cache bound to `setup` (seed fields are overridden
    /// per entry via [`ExperimentSetup::with_seed`]).
    pub fn new(setup: &ExperimentSetup) -> BaselineCache {
        BaselineCache {
            setup: setup.clone(),
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// The experiment setup this cache measures baselines for.
    pub fn setup(&self) -> &ExperimentSetup {
        &self.setup
    }

    /// Number of memoised baselines.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// True when no baseline has been measured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The baseline measurement for `seed`, computing and memoising it on
    /// first use. Identical to `setup.with_seed(seed).baseline()`.
    pub fn get(&self, seed: u64) -> RunMeasurement {
        if let Some(m) = self.entries.lock().expect("cache poisoned").get(&seed) {
            return *m;
        }
        // Computed outside the lock so concurrent cell jobs are never
        // serialised on a training run; a racing duplicate computes the
        // same deterministic value.
        let measured = self.setup.with_seed(seed).baseline();
        *self
            .entries
            .lock()
            .expect("cache poisoned")
            .entry(seed)
            .or_insert(measured)
    }

    /// Ensures every seed is memoised, computing missing ones in parallel
    /// per the setup's [`Parallelism`].
    pub fn prime(&self, seeds: &[u64]) {
        let missing: Vec<u64> = {
            let entries = self.entries.lock().expect("cache poisoned");
            let mut missing: Vec<u64> = seeds
                .iter()
                .copied()
                .filter(|s| !entries.contains_key(s))
                .collect();
            missing.sort_unstable();
            missing.dedup();
            missing
        };
        if missing.is_empty() {
            return;
        }
        let measured = run_indexed(missing.len(), self.setup.parallelism, |i| {
            self.setup.with_seed(missing[i]).baseline()
        });
        let mut entries = self.entries.lock().expect("cache poisoned");
        for (seed, m) in missing.into_iter().zip(measured) {
            entries.entry(seed).or_insert(m);
        }
    }
}

/// Sweep parameters for the threshold attacks — the legacy grid form,
/// kept as the input of the [`plan_threshold_sweep`] wrapper and the
/// [`ScenarioSpec::threshold`] preset builder.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Relative threshold changes (the paper sweeps ±10%, ±20%).
    pub rel_changes: Vec<f64>,
    /// Layer fractions (the paper sweeps 0%–100%).
    pub fractions: Vec<f64>,
    /// Seeds; each cell is averaged over all of them.
    pub seeds: Vec<u64>,
}

impl SweepConfig {
    /// The paper's Fig. 8 grid.
    pub fn paper_grid() -> SweepConfig {
        SweepConfig {
            rel_changes: vec![-0.20, -0.10, 0.10, 0.20],
            fractions: vec![0.0, 0.25, 0.50, 0.75, 0.90, 1.0],
            seeds: vec![42],
        }
    }

    /// A small grid for smoke runs.
    pub fn quick_grid() -> SweepConfig {
        SweepConfig {
            rel_changes: vec![-0.20, 0.20],
            fractions: vec![0.0, 0.5, 1.0],
            seeds: vec![42],
        }
    }
}

/// One measured sweep cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCell {
    /// The primary swept value of the cell: the threshold change for
    /// threshold families, the theta change for theta, the supply
    /// voltage for VDD.
    pub rel_change: f64,
    /// Affected layer fraction of the cell (1.0 for non-threshold
    /// families, as the figures pin it).
    pub fraction: f64,
    /// Mean attacked accuracy over seeds.
    pub accuracy: f64,
    /// Relative change versus baseline, percent.
    pub relative_change_percent: f64,
}

/// A complete sweep result.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Which attack was swept.
    pub kind: AttackKind,
    /// Mean baseline accuracy over seeds.
    pub baseline_accuracy: f64,
    /// All measured cells, row-major over [`SweepResult::axes`].
    pub cells: Vec<SweepCell>,
    /// The resolved axes of the scenario that produced the result
    /// (empty for hand-assembled results). Cells are addressed by axis
    /// indices through [`SweepResult::cell_at`].
    pub axes: Vec<Axis>,
}

impl SweepResult {
    /// The cell with the most negative relative change. NaN cells (which
    /// cannot occur from the built-in attacks but may reach this type via
    /// hand-assembled results) never panic and never win; if every cell is
    /// NaN, the first cell is returned.
    pub fn worst_case(&self) -> Option<&SweepCell> {
        self.cells
            .iter()
            .filter(|c| !c.relative_change_percent.is_nan())
            .min_by(|a, b| {
                a.relative_change_percent
                    .total_cmp(&b.relative_change_percent)
            })
            .or_else(|| self.cells.first())
    }

    /// The per-axis point counts (empty for hand-assembled results).
    pub fn shape(&self) -> Vec<usize> {
        self.axes.iter().map(|a| a.values.len()).collect()
    }

    /// The axis indices of the cell at `flat` (the inverse of
    /// [`SweepResult::cell_at`]'s row-major flattening). `None` for
    /// out-of-range slots or results without axes.
    pub fn axis_indices(&self, flat: usize) -> Option<Vec<usize>> {
        if self.axes.is_empty() || flat >= self.cells.len() {
            return None;
        }
        let mut indices = vec![0usize; self.axes.len()];
        let mut rest = flat;
        for (slot, axis) in indices.iter_mut().zip(&self.axes).rev() {
            let len = axis.values.len().max(1);
            *slot = rest % len;
            rest /= len;
        }
        Some(indices)
    }

    /// Addresses a cell by its axis indices (row-major, one index per
    /// axis) — the epsilon-free lookup. Returns `None` for shape
    /// mismatches, out-of-range indices, or results without axes.
    pub fn cell_at(&self, indices: &[usize]) -> Option<&SweepCell> {
        if self.axes.is_empty() || indices.len() != self.axes.len() {
            return None;
        }
        let mut flat = 0usize;
        for (axis, &i) in self.axes.iter().zip(indices) {
            if i >= axis.values.len() {
                return None;
            }
            flat = flat * axis.values.len() + i;
        }
        self.cells.get(flat)
    }

    /// Looks up a cell by its `(primary value, fraction)` coordinates
    /// with **bit-exact** matching — coordinates are axis values copied
    /// verbatim into the cells, so recomputing the same expression (even
    /// a float artefact like `0.1 + 0.2`) finds its cell, and two axis
    /// points closer than any epsilon stay distinguishable. Use
    /// [`SweepResult::cell_at`] to address cells by axis indices
    /// instead.
    pub fn cell(&self, rel_change: f64, fraction: f64) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.rel_change.to_bits() == rel_change.to_bits()
                && c.fraction.to_bits() == fraction.to_bits()
        })
    }
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len().max(1) as f64
}

/// The attack one [`CellJob`] runs: the family plus the **resolved
/// composite parameters** of every scenario axis — a serialisable,
/// self-contained description (no closures, no tables) so jobs can
/// cross process and machine boundaries.
///
/// The components stack into one [`FaultPlan`]: the optional VDD
/// component contributes the transfer-table faults, the optional theta
/// component scales the drive on top, and the optional threshold
/// component overrides the targeted layer fraction last. Pure
/// single-family cells reduce exactly to the paper's five attacks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellAttack {
    /// The scenario's attack family, with the threshold layer selection
    /// resolved per cell (a `layer` axis overrides the family default).
    pub family: AttackFamily,
    /// Threshold component: relative threshold change, if any.
    pub rel_change: Option<f64>,
    /// Threshold component: affected layer fraction (1.0 unless a
    /// `fraction` axis set it).
    pub fraction: f64,
    /// Drive component: relative theta change, if any.
    pub theta_change: Option<f64>,
    /// Global supply component: the manipulated VDD, if any (the
    /// executor supplies the VDD → parameter transfer table).
    pub vdd: Option<f64>,
    /// Per-cell seed override (set by a `seed` axis); `None` averages
    /// over the plan's seed list.
    pub seed: Option<u64>,
    /// §V hardening applied to the cell's transfer table before the
    /// VDD component is sampled ([`DefenseSel::None`] is the
    /// undefended legacy circuit).
    pub defense: DefenseSel,
    /// §V-C detector armed for the cell; the hit/miss outcome is a
    /// pure function of the resolved attack (see
    /// [`cell_countermeasures`]), so it never touches the measured
    /// [`SweepCell`] bytes.
    pub detector: DetectorSel,
    /// Layer-netlist component (set by a `neurons` axis): the cell
    /// simulates the actual analog layer of this many neurons at the
    /// cell's VDD instead of the network-level accuracy model.
    pub neurons: Option<u64>,
}

impl CellAttack {
    /// A pure threshold cell (Attacks 2–4; `layer = None` is Attack 4).
    pub fn threshold(layer: Option<TargetLayer>, rel_change: f64, fraction: f64) -> CellAttack {
        CellAttack {
            family: AttackFamily::Threshold(crate::scenario::LayerSel::from_target(layer)),
            rel_change: Some(rel_change),
            fraction,
            theta_change: None,
            vdd: None,
            seed: None,
            defense: DefenseSel::None,
            detector: DetectorSel::None,
            neurons: None,
        }
    }

    /// A pure theta cell (Attack 1).
    pub fn theta(theta_change: f64) -> CellAttack {
        CellAttack {
            family: AttackFamily::Theta,
            rel_change: None,
            fraction: 1.0,
            theta_change: Some(theta_change),
            vdd: None,
            seed: None,
            defense: DefenseSel::None,
            detector: DetectorSel::None,
            neurons: None,
        }
    }

    /// A pure VDD cell (Attack 5).
    pub fn vdd(vdd: f64) -> CellAttack {
        CellAttack {
            family: AttackFamily::Vdd,
            rel_change: None,
            fraction: 1.0,
            theta_change: None,
            vdd: Some(vdd),
            seed: None,
            defense: DefenseSel::None,
            detector: DetectorSel::None,
            neurons: None,
        }
    }

    /// The `(primary value, fraction)` coordinates this attack's cell
    /// reports: the family's primary change plus the threshold fraction
    /// (non-threshold families pin 1.0, as the figures do).
    pub fn coordinates(&self) -> (f64, f64) {
        match self.family {
            AttackFamily::Threshold(_) => (self.rel_change.unwrap_or(0.0), self.fraction),
            AttackFamily::Theta => (self.theta_change.unwrap_or(0.0), 1.0),
            AttackFamily::Vdd => (self.vdd.unwrap_or(0.0), 1.0),
        }
    }
}

/// One unit of sweep work: which attack to run and which result slot the
/// measurement belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellJob {
    /// Slot in the final [`SweepResult::cells`] vector.
    pub index: usize,
    /// The attack to run.
    pub attack: CellAttack,
}

/// One executed cell: the measured [`SweepCell`] plus the slot it must be
/// written to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResult {
    /// Slot in the final [`SweepResult::cells`] vector.
    pub index: usize,
    /// The measured cell.
    pub cell: SweepCell,
}

/// The enumerated form of one sweep: every cell of the grid as an
/// independent, index-addressed [`CellJob`], plus the resolved axes the
/// slots are row-major over.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// Which attack family the plan sweeps.
    pub kind: AttackKind,
    /// Seeds every cell averages over (a `seed` axis lists its values
    /// here so baselines are primed, while each cell carries its own
    /// override).
    pub seeds: Vec<u64>,
    /// The resolved scenario axes (slot order is row-major over them).
    pub axes: Vec<Axis>,
    /// The cells, in result-slot order (`jobs[i].index == i`).
    pub jobs: Vec<CellJob>,
}

/// Stage 1 (enumerate): flattens a threshold-attack grid into a
/// [`SweepPlan`] — a thin wrapper building the corresponding
/// [`ScenarioSpec`]. `layer = None` plans Attack 4, keeping only the
/// 100% fraction as the paper defines it.
pub fn plan_threshold_sweep(layer: Option<TargetLayer>, config: &SweepConfig) -> SweepPlan {
    ScenarioSpec::threshold(layer, config).plan()
}

/// Stage 1 (enumerate): one [`CellJob`] per theta change (Fig. 7b) — a
/// thin wrapper over the scenario planner.
pub fn plan_theta_sweep(theta_changes: &[f64], seeds: &[u64]) -> SweepPlan {
    ScenarioSpec::theta(theta_changes, seeds).plan()
}

/// Stage 1 (enumerate): one [`CellJob`] per supply voltage (Fig. 9a) —
/// a thin wrapper over the scenario planner. The transfer table is an
/// execution concern ([`execute_cell`]), not a planning one.
pub fn plan_vdd_sweep(vdds: &[f64], seeds: &[u64]) -> SweepPlan {
    ScenarioSpec {
        family: AttackFamily::Vdd,
        axes: vec![Axis::real(crate::scenario::AxisKind::Vdd, vdds.to_vec())],
        seeds: seeds.to_vec(),
        transfer: None,
    }
    .plan()
}

/// Primes `cache` for `seeds` and returns the mean baseline accuracy —
/// the reference every cell's relative change is computed against.
/// Deterministic: any executor (local or remote) derives the same value
/// from the same setup.
pub fn mean_baseline_accuracy(cache: &BaselineCache, seeds: &[u64]) -> f64 {
    cache.prime(seeds);
    let per_seed: Vec<f64> = seeds.iter().map(|&s| cache.get(s).accuracy).collect();
    mean(&per_seed)
}

/// Builds the final cell from a measured mean accuracy, exactly as the
/// serial engine always has (shared so every execution path is
/// bit-identical by construction).
fn finish_cell(rel_change: f64, fraction: f64, accuracy: f64, baseline_accuracy: f64) -> SweepCell {
    SweepCell {
        rel_change,
        fraction,
        accuracy,
        relative_change_percent: if baseline_accuracy > 0.0 {
            (accuracy - baseline_accuracy) / baseline_accuracy * 100.0
        } else {
            0.0
        },
    }
}

/// Measures one grid cell: runs the attack for every seed (reusing the
/// memoised baselines) and averages.
fn measure_cell<A: Attack>(
    cache: &BaselineCache,
    seeds: &[u64],
    rel_change: f64,
    fraction: f64,
    baseline_accuracy: f64,
    attack: &A,
) -> Result<SweepCell, Error> {
    let mut accuracies = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let setup = cache.setup().with_seed(seed);
        let baseline = cache.get(seed);
        let outcome = attack.run_with_baseline(&setup, baseline)?;
        accuracies.push(outcome.attacked_accuracy);
    }
    Ok(finish_cell(
        rel_change,
        fraction,
        mean(&accuracies),
        baseline_accuracy,
    ))
}

/// A resolved composite attack: the [`FaultPlan`] a cell's components
/// stacked into, runnable through the standard [`Attack`] protocol.
struct ComposedAttack {
    kind: AttackKind,
    plan: FaultPlan,
}

impl Attack for ComposedAttack {
    fn kind(&self) -> AttackKind {
        self.kind
    }

    fn fault_plan(&self) -> FaultPlan {
        self.plan.clone()
    }
}

/// Validates one wire-crossing [`CellAttack`] and stacks its components
/// into a [`FaultPlan`]. Component order is fixed (VDD table faults,
/// then the theta drive scale on top, then the threshold override), so
/// every executor derives the identical plan.
fn compose_fault_plan(
    attack: &CellAttack,
    transfer: Option<&PowerTransferTable>,
    index: usize,
) -> Result<FaultPlan, Error> {
    // Family ↔ component consistency: jobs may arrive over a wire, so
    // impossible combinations are rejected instead of panicking.
    match attack.family {
        AttackFamily::Threshold(_) if attack.rel_change.is_none() => {
            return Err(Error::Invalid(format!(
                "threshold cell {index} has no rel_change component"
            )))
        }
        AttackFamily::Theta if attack.theta_change.is_none() => {
            return Err(Error::Invalid(format!(
                "theta cell {index} has no theta_change component"
            )))
        }
        AttackFamily::Vdd if attack.vdd.is_none() => {
            return Err(Error::Invalid(format!(
                "vdd cell {index} has no vdd component"
            )))
        }
        _ => {}
    }
    if attack.rel_change.is_some() && !matches!(attack.family, AttackFamily::Threshold(_)) {
        return Err(Error::Invalid(format!(
            "cell {index} has a threshold component but family `{}` names no layer",
            attack.family
        )));
    }
    // Countermeasure components act through the VDD path; on a cell
    // without one they would be silent no-ops, so reject them (specs
    // catch this in validate(), but jobs may arrive over a wire).
    if attack.vdd.is_none() {
        if attack.defense != DefenseSel::None {
            return Err(Error::Invalid(format!(
                "cell {index} has a defense component but no vdd component"
            )));
        }
        if attack.detector != DetectorSel::None {
            return Err(Error::Invalid(format!(
                "cell {index} has a detector component but no vdd component"
            )));
        }
    }

    let mut plan = match attack.vdd {
        Some(vdd) => {
            if !(vdd.is_finite() && vdd > 0.0) {
                return Err(Error::Invalid(format!(
                    "vdd cell {index} has non-positive supply {vdd}"
                )));
            }
            let transfer = transfer.ok_or_else(|| {
                Error::Invalid(format!("vdd cell {index} needs a power-transfer table"))
            })?;
            // A defended cell samples the VDD fault from the hardened
            // table — exactly the §V semantics of
            // [`defended_vdd_attack`](crate::defense): the defense
            // reshapes the VDD → parameter coupling before the attack
            // reads it. The undefended path is byte-for-byte the
            // legacy one.
            match attack.defense.defense() {
                Some(defense) => FaultPlan::from_vdd(vdd, &defense.harden_table(transfer)),
                None => FaultPlan::from_vdd(vdd, transfer),
            }
        }
        None => FaultPlan::none(),
    };
    if let Some(theta) = attack.theta_change {
        if !(theta > -1.0 && theta.is_finite()) {
            return Err(Error::Invalid(format!(
                "theta cell {index} has impossible change {theta}"
            )));
        }
        let scale = match plan.drive {
            Some(drive) => drive.scale * (1.0 + theta),
            None => 1.0 + theta,
        };
        plan.drive = Some(DriveFault { scale });
    }
    if let Some(rel_change) = attack.rel_change {
        let rel_ok = rel_change.is_finite() && rel_change > -1.0 && rel_change < 1.0;
        if !rel_ok || !(0.0..=1.0).contains(&attack.fraction) {
            return Err(Error::Invalid(format!(
                "threshold cell {index} has invalid parameters (rel_change {rel_change}, \
                 fraction {})",
                attack.fraction
            )));
        }
        let AttackFamily::Threshold(sel) = attack.family else {
            unreachable!("family checked above");
        };
        let layers: &[TargetLayer] = match sel.target() {
            Some(TargetLayer::Excitatory) => &[TargetLayer::Excitatory],
            Some(TargetLayer::Inhibitory) => &[TargetLayer::Inhibitory],
            None => &[TargetLayer::Excitatory, TargetLayer::Inhibitory],
        };
        for &layer in layers {
            plan.thresholds.push(ThresholdFault {
                layer,
                rel_change,
                fraction: attack.fraction,
                selection: Selection::FirstK,
                convention: ThresholdConvention::PaperSignedScale,
            });
        }
    }
    Ok(plan)
}

/// Stage 2 (execute): measures one [`CellJob`] against a
/// [`BaselineCache`]. Cells with a VDD component need the `transfer`
/// table the campaign was characterised with. A cell with a `seed`
/// override measures that single seed; others average over `seeds`.
///
/// Jobs are validated rather than trusted (they may arrive over a wire):
/// impossible parameters and family/component mismatches are rejected as
/// [`Error::Invalid`] instead of panicking.
///
/// # Errors
/// Propagates attack failures; rejects invalid job parameters and VDD
/// components without a transfer table.
pub fn execute_cell(
    cache: &BaselineCache,
    seeds: &[u64],
    baseline_accuracy: f64,
    job: &CellJob,
    transfer: Option<&PowerTransferTable>,
) -> Result<CellResult, Error> {
    let plan = compose_fault_plan(&job.attack, transfer, job.index)?;
    if job.attack.neurons.is_some() {
        // A layer-netlist cell validated like any other (above) but
        // measures the actual analog layer, not the accuracy model.
        return execute_layer_cell(job);
    }
    let attack = ComposedAttack {
        kind: job.attack.family.kind(),
        plan,
    };
    let seed_override;
    let seeds = match job.attack.seed {
        Some(seed) => {
            seed_override = [seed];
            &seed_override[..]
        }
        None => seeds,
    };
    let (rel_change, fraction) = job.attack.coordinates();
    let cell = measure_cell(
        cache,
        seeds,
        rel_change,
        fraction,
        baseline_accuracy,
        &attack,
    )?;
    Ok(CellResult {
        index: job.index,
        cell,
    })
}

/// Executes one layer-netlist cell: simulates the analog layer at the
/// cell's supply voltage on the sparse engine and reports the mean
/// output spikes per neuron as the cell's accuracy, relative to the
/// same layer at the nominal supply. Deterministic like every other
/// cell — the circuit simulation is seed-free and single-threaded, so
/// any executor derives the identical bytes.
fn execute_layer_cell(job: &CellJob) -> Result<CellResult, Error> {
    let attack = &job.attack;
    let neurons = attack
        .neurons
        .ok_or_else(|| Error::Invalid(format!("cell {} has no neurons component", job.index)))?;
    if neurons == 0 || neurons > crate::scenario::MAX_LAYER_NEURONS {
        return Err(Error::Invalid(format!(
            "layer cell {} has {neurons} neurons, outside [1, {}]",
            job.index,
            crate::scenario::MAX_LAYER_NEURONS
        )));
    }
    // §V defenses with a circuit realisation swap the neuron design;
    // the transfer-table-only hardenings would be silent no-ops here.
    let neuron = match attack.defense {
        DefenseSel::None => neurofi_analog::AxonHillock::default(),
        DefenseSel::SizedNeuron => {
            neurofi_analog::AxonHillock::default().with_first_inverter_ratio(32.0)
        }
        DefenseSel::Comparator => neurofi_analog::AxonHillock::default().with_comparator_stage(),
        other => {
            return Err(Error::Invalid(format!(
                "layer cell {} defense `{other}` has no circuit realisation",
                job.index
            )))
        }
    };
    let vdd = attack.vdd.unwrap_or(detection::VDD_NOMINAL);
    let mut layer = LayerNetlist::paper_layer(neurons as usize);
    layer.neuron = neuron;
    let (tstop, dt) = LayerNetlist::cell_window();
    let attacked = layer
        .clone()
        .with_vdd(vdd)
        .simulate(Engine::Sparse, tstop, dt)
        .map_err(Error::Circuit)?;
    let accuracy = attacked.mean_spikes_per_neuron();
    // The reference is the identical layer at the nominal supply; at
    // nominal the cell is its own reference (percent change 0) with no
    // second simulation.
    let reference = if vdd == detection::VDD_NOMINAL {
        accuracy
    } else {
        layer
            .with_vdd(detection::VDD_NOMINAL)
            .simulate(Engine::Sparse, tstop, dt)
            .map_err(Error::Circuit)?
            .mean_spikes_per_neuron()
    };
    let (rel_change, fraction) = attack.coordinates();
    Ok(CellResult {
        index: job.index,
        cell: finish_cell(rel_change, fraction, accuracy, reference),
    })
}

/// Per-cell countermeasure report: the §V defense overhead and the
/// §V-C detection outcome of one resolved [`CellAttack`].
///
/// Both are **pure functions of the attack and the transfer table** —
/// the overhead comes from the paper's accounting, the detection from
/// the dummy-neuron response at the cell's supply — so they are derived
/// at report time and never touch the measured [`SweepCell`] bytes the
/// wire protocol and result store are locked to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellCountermeasures {
    /// The cell's defense selection.
    pub defense: DefenseSel,
    /// The cell's detector selection.
    pub detector: DetectorSel,
    /// Defense power overhead, percent (0 for the undefended cell).
    pub power_overhead_percent: f64,
    /// Defense area overhead, percent (0 for the undefended cell).
    pub area_overhead_percent: f64,
    /// Dummy-neuron spike-count deviation, percent — `None` when no
    /// detector is armed or the cell has no VDD component to sense.
    pub deviation_percent: Option<f64>,
    /// Hit / miss / quiet, under the same conditions.
    pub detection: Option<detection::DetectionOutcome>,
}

/// Derives the [`CellCountermeasures`] of one resolved attack.
///
/// The detector's dummy neuron sees the **raw** supply: §V defenses
/// harden the network's transfer function, not the sensor, so detection
/// is evaluated on the undefended `transfer` table regardless of the
/// cell's defense — a defended-but-detected cell is exactly the
/// attack-caught-anyway quadrant the §V matrices are after.
pub fn cell_countermeasures(
    attack: &CellAttack,
    transfer: Option<&PowerTransferTable>,
) -> CellCountermeasures {
    let (power, area) = match attack.defense.defense() {
        Some(defense) => {
            let overhead = defense.paper_overhead();
            (overhead.power_percent, overhead.area_percent)
        }
        None => (0.0, 0.0),
    };
    let mut out = CellCountermeasures {
        defense: attack.defense,
        detector: attack.detector,
        power_overhead_percent: power,
        area_overhead_percent: area,
        deviation_percent: None,
        detection: None,
    };
    if attack.detector != DetectorSel::DummyNeuron {
        return out;
    }
    let (Some(vdd), Some(transfer)) = (attack.vdd, transfer) else {
        return out;
    };
    // The absolute enrolled count cancels out of the deviation; any
    // positive value yields the same outcome. Routing through the
    // detector keeps the §V-C tolerance rule the single source of
    // truth.
    const ENROLLED_COUNT: f64 = 1000.0;
    let detector =
        DummyNeuronDetector::new(ENROLLED_COUNT).expect("enrolled count is a positive constant");
    let scale = detection::dummy_count_scale(vdd, transfer)
        / detection::dummy_count_scale(detection::VDD_NOMINAL, transfer);
    let observed = ENROLLED_COUNT * scale;
    out.deviation_percent = Some(detector.deviation(observed) * 100.0);
    out.detection = Some(if detector.is_attack(observed) {
        detection::DetectionOutcome::Detected
    } else if (vdd - detection::VDD_NOMINAL).abs() <= 1e-9 {
        detection::DetectionOutcome::Quiet
    } else {
        detection::DetectionOutcome::Missed
    });
    out
}

/// Stage 3 (assemble): writes every [`CellResult`] into its plan slot
/// and returns the completed [`SweepResult`], carrying the plan's
/// resolved axes so cells stay addressable by axis indices. Results may
/// arrive in any order (the in-process pool and the distributed
/// coordinator both feed this); duplicate slots must carry identical
/// cells (retries after a lost acknowledgement re-deliver the same
/// deterministic measurement).
///
/// # Errors
/// Rejects out-of-range indices, conflicting duplicates, and missing
/// cells — an incomplete campaign never assembles silently.
pub fn assemble_sweep(
    plan: &SweepPlan,
    baseline_accuracy: f64,
    results: impl IntoIterator<Item = CellResult>,
) -> Result<SweepResult, Error> {
    assemble_cells(
        plan.kind,
        plan.axes.clone(),
        baseline_accuracy,
        plan.jobs.len(),
        results,
    )
}

/// The slot-addressed core of [`assemble_sweep`], for callers without a
/// plan (hand-built results; `axes` may be empty).
///
/// # Errors
/// See [`assemble_sweep`].
pub fn assemble_cells(
    kind: AttackKind,
    axes: Vec<Axis>,
    baseline_accuracy: f64,
    n_cells: usize,
    results: impl IntoIterator<Item = CellResult>,
) -> Result<SweepResult, Error> {
    let mut slots: Vec<Option<SweepCell>> = vec![None; n_cells];
    for result in results {
        let slot = slots.get_mut(result.index).ok_or_else(|| {
            Error::Invalid(format!(
                "cell index {} outside the {n_cells}-cell grid",
                result.index
            ))
        })?;
        match slot {
            Some(existing) if *existing != result.cell => {
                return Err(Error::Invalid(format!(
                    "conflicting duplicate results for cell {}",
                    result.index
                )));
            }
            _ => *slot = Some(result.cell),
        }
    }
    let cells = slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.ok_or_else(|| Error::Invalid(format!("cell {index} was never measured")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SweepResult {
        kind,
        baseline_accuracy,
        cells,
        axes,
    })
}

/// Runs every job of `plan` on the in-process pool and assembles the
/// result — the shared backend of every `*_sweep_cached` entry point.
fn run_plan(
    cache: &BaselineCache,
    plan: &SweepPlan,
    transfer: Option<&PowerTransferTable>,
) -> Result<SweepResult, Error> {
    let baseline_accuracy = mean_baseline_accuracy(cache, &plan.seeds);
    let measured = run_indexed(plan.jobs.len(), cache.setup().parallelism, |i| {
        execute_cell(
            cache,
            &plan.seeds,
            baseline_accuracy,
            &plan.jobs[i],
            transfer,
        )
    });
    let results = measured.into_iter().collect::<Result<Vec<_>, _>>()?;
    assemble_sweep(plan, baseline_accuracy, results)
}

/// Runs an arbitrary N-axis scenario against a shared [`BaselineCache`]
/// — the engine's single front door. Validates the spec, resolves its
/// transfer table, plans, executes on the in-process pool, and
/// assembles.
///
/// # Errors
/// Propagates validation and attack failures.
pub fn scenario_sweep_cached(
    cache: &BaselineCache,
    spec: &ScenarioSpec,
) -> Result<SweepResult, Error> {
    spec.validate()?;
    let transfer = spec.transfer_table()?;
    run_plan(cache, &spec.plan(), transfer.as_ref())
}

/// [`scenario_sweep_cached`] with a fresh cache for `setup`.
///
/// # Errors
/// See [`scenario_sweep_cached`].
pub fn scenario_sweep(setup: &ExperimentSetup, spec: &ScenarioSpec) -> Result<SweepResult, Error> {
    scenario_sweep_cached(&BaselineCache::new(setup), spec)
}

/// Sweeps a threshold attack over `rel_changes × fractions × seeds`
/// against a shared [`BaselineCache`] (the setup is the cache's):
/// per-seed baselines are computed at most once across all attack kinds
/// swept through the same cache. `layer = None` sweeps Attack 4.
///
/// # Errors
/// Propagates attack failures.
pub fn threshold_sweep_cached(
    cache: &BaselineCache,
    layer: Option<TargetLayer>,
    config: &SweepConfig,
) -> Result<SweepResult, Error> {
    run_plan(cache, &plan_threshold_sweep(layer, config), None)
}

/// Sweeps Attack 1 over theta changes (Fig. 7b) against a shared
/// [`BaselineCache`]. Cells use the `fraction` field to carry 1.0
/// (drivers are attacked globally).
///
/// # Errors
/// Propagates attack failures.
pub fn theta_sweep_cached(
    cache: &BaselineCache,
    theta_changes: &[f64],
    seeds: &[u64],
) -> Result<SweepResult, Error> {
    run_plan(cache, &plan_theta_sweep(theta_changes, seeds), None)
}

/// Sweeps Attack 5 over supply voltages (Fig. 9a) against a shared
/// [`BaselineCache`]. Cells use `rel_change` to carry the VDD value.
///
/// # Errors
/// Propagates attack failures.
pub fn vdd_sweep_cached(
    cache: &BaselineCache,
    vdds: &[f64],
    transfer: &PowerTransferTable,
    seeds: &[u64],
) -> Result<SweepResult, Error> {
    run_plan(cache, &plan_vdd_sweep(vdds, seeds), Some(transfer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AxisKind, LayerSel};

    fn tiny_setup() -> ExperimentSetup {
        let mut setup = ExperimentSetup::quick(11);
        setup.n_train = 100;
        setup.n_test = 50;
        setup.network.sample_time_ms = 80.0;
        setup.train_options.assignment_window = None;
        setup
    }

    #[test]
    fn zero_fraction_cells_match_baseline() {
        let setup = tiny_setup();
        let config = SweepConfig {
            rel_changes: vec![-0.2],
            fractions: vec![0.0],
            seeds: vec![1],
        };
        let cache = BaselineCache::new(&setup);
        let result =
            threshold_sweep_cached(&cache, Some(TargetLayer::Inhibitory), &config).unwrap();
        let cell = result.cell(-0.2, 0.0).unwrap();
        assert!((cell.accuracy - result.baseline_accuracy).abs() < 1e-9);
        assert!(cell.relative_change_percent.abs() < 1e-9);
    }

    #[test]
    fn both_layer_sweep_only_keeps_full_fraction() {
        let setup = tiny_setup();
        let config = SweepConfig {
            rel_changes: vec![-0.2, 0.2],
            fractions: vec![0.0, 0.5, 1.0],
            seeds: vec![1],
        };
        let cache = BaselineCache::new(&setup);
        let result = threshold_sweep_cached(&cache, None, &config).unwrap();
        assert_eq!(result.kind, AttackKind::BothLayerThreshold);
        assert_eq!(result.cells.len(), 2); // one per rel_change, only f=1.0
        assert!(result.cells.iter().all(|c| c.fraction == 1.0));
    }

    #[test]
    fn worst_case_finds_minimum() {
        let result = SweepResult {
            kind: AttackKind::InhibitoryThreshold,
            baseline_accuracy: 0.8,
            cells: vec![
                SweepCell {
                    rel_change: -0.2,
                    fraction: 1.0,
                    accuracy: 0.1,
                    relative_change_percent: -87.5,
                },
                SweepCell {
                    rel_change: 0.2,
                    fraction: 1.0,
                    accuracy: 0.6,
                    relative_change_percent: -25.0,
                },
            ],
            axes: Vec::new(),
        };
        assert_eq!(result.worst_case().unwrap().rel_change, -0.2);
    }

    #[test]
    fn worst_case_survives_nan_cells() {
        // A NaN cell must neither panic (the old partial_cmp().unwrap()
        // did) nor win the minimum.
        let nan_cell = SweepCell {
            rel_change: 0.1,
            fraction: 1.0,
            accuracy: f64::NAN,
            relative_change_percent: f64::NAN,
        };
        let real_cell = SweepCell {
            rel_change: -0.1,
            fraction: 1.0,
            accuracy: 0.5,
            relative_change_percent: -37.5,
        };
        // Negative NaN sorts before -inf under total_cmp; it must still
        // never beat a real cell.
        let neg_nan_cell = SweepCell {
            relative_change_percent: f64::NAN.copysign(-1.0),
            ..nan_cell
        };
        let result = SweepResult {
            kind: AttackKind::ExcitatoryThreshold,
            baseline_accuracy: 0.8,
            cells: vec![nan_cell, neg_nan_cell, real_cell],
            axes: Vec::new(),
        };
        assert_eq!(result.worst_case().unwrap().rel_change, -0.1);
        let all_nan = SweepResult {
            kind: AttackKind::ExcitatoryThreshold,
            baseline_accuracy: 0.8,
            cells: vec![nan_cell],
            axes: Vec::new(),
        };
        assert!(all_nan
            .worst_case()
            .unwrap()
            .relative_change_percent
            .is_nan());
    }

    #[test]
    fn theta_sweep_produces_one_cell_per_change() {
        let setup = tiny_setup();
        let cache = BaselineCache::new(&setup);
        let result = theta_sweep_cached(&cache, &[-0.2, 0.2], &[1]).unwrap();
        assert_eq!(result.cells.len(), 2);
        assert_eq!(result.kind, AttackKind::InputSpikeCorruption);
    }

    #[test]
    fn vdd_sweep_nominal_point_matches_baseline() {
        let setup = tiny_setup();
        let transfer = PowerTransferTable::paper_nominal();
        let cache = BaselineCache::new(&setup);
        let result = vdd_sweep_cached(&cache, &[1.0], &transfer, &[1]).unwrap();
        assert!((result.cells[0].accuracy - result.baseline_accuracy).abs() < 1e-9);
    }

    #[test]
    fn paper_grid_dimensions() {
        let g = SweepConfig::paper_grid();
        assert_eq!(g.rel_changes.len(), 4);
        assert!(g.fractions.contains(&1.0) && g.fractions.contains(&0.0));
    }

    #[test]
    fn parallel_sweeps_are_bit_identical_to_serial() {
        let mut setup = tiny_setup();
        setup.n_train = 60;
        setup.n_test = 30;
        setup.network.sample_time_ms = 60.0;
        let config = SweepConfig {
            rel_changes: vec![-0.2, 0.2],
            fractions: vec![0.0, 1.0],
            seeds: vec![1, 2],
        };
        let run = |parallelism: Parallelism| {
            let s = setup.clone().with_parallelism(parallelism);
            threshold_sweep_cached(
                &BaselineCache::new(&s),
                Some(TargetLayer::Inhibitory),
                &config,
            )
            .unwrap()
        };
        let serial = run(Parallelism::Serial);
        for threads in [2, 4] {
            let parallel = run(Parallelism::Threads(threads));
            assert_eq!(
                serial.baseline_accuracy.to_bits(),
                parallel.baseline_accuracy.to_bits(),
                "baseline diverged at {threads} threads"
            );
            assert_eq!(serial.cells.len(), parallel.cells.len());
            for (s, p) in serial.cells.iter().zip(&parallel.cells) {
                assert_eq!(s.rel_change.to_bits(), p.rel_change.to_bits());
                assert_eq!(s.fraction.to_bits(), p.fraction.to_bits());
                assert_eq!(
                    s.accuracy.to_bits(),
                    p.accuracy.to_bits(),
                    "cell ({}, {}) diverged at {threads} threads",
                    s.rel_change,
                    s.fraction
                );
                assert_eq!(
                    s.relative_change_percent.to_bits(),
                    p.relative_change_percent.to_bits()
                );
            }
        }
    }

    #[test]
    fn baseline_cache_matches_fresh_baseline_run() {
        let mut setup = tiny_setup();
        setup.n_train = 60;
        setup.n_test = 30;
        let cache = BaselineCache::new(&setup);
        let cached = cache.get(7);
        let fresh = setup.with_seed(7).baseline();
        assert_eq!(cached, fresh);
        // Repeated lookups hit the memo (still the same value).
        assert_eq!(cache.get(7), fresh);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn baseline_cache_is_shared_across_attack_kinds() {
        let mut setup = tiny_setup();
        setup.n_train = 60;
        setup.n_test = 30;
        setup.network.sample_time_ms = 60.0;
        let config = SweepConfig {
            rel_changes: vec![-0.2],
            fractions: vec![1.0],
            seeds: vec![3],
        };
        let cache = BaselineCache::new(&setup);
        let el = threshold_sweep_cached(&cache, Some(TargetLayer::Excitatory), &config).unwrap();
        let il = threshold_sweep_cached(&cache, Some(TargetLayer::Inhibitory), &config).unwrap();
        let both = threshold_sweep_cached(&cache, None, &config).unwrap();
        // One seed, three attack kinds: the baseline was measured once.
        assert_eq!(cache.len(), 1);
        assert_eq!(
            el.baseline_accuracy.to_bits(),
            il.baseline_accuracy.to_bits()
        );
        assert_eq!(
            el.baseline_accuracy.to_bits(),
            both.baseline_accuracy.to_bits()
        );
    }

    #[test]
    fn parallelism_worker_counts() {
        assert_eq!(Parallelism::Serial.worker_count(), 1);
        assert_eq!(Parallelism::Threads(0).worker_count(), 1);
        assert_eq!(Parallelism::Threads(6).worker_count(), 6);
        assert!(Parallelism::Auto.worker_count() >= 1);
    }

    #[test]
    fn plans_enumerate_in_slot_order() {
        let config = SweepConfig {
            rel_changes: vec![-0.2, 0.2],
            fractions: vec![0.0, 0.5, 1.0],
            seeds: vec![1, 2],
        };
        let plan = plan_threshold_sweep(Some(TargetLayer::Inhibitory), &config);
        assert_eq!(plan.kind, AttackKind::InhibitoryThreshold);
        assert_eq!(plan.jobs.len(), 6);
        assert!(plan.jobs.iter().enumerate().all(|(i, j)| j.index == i));
        assert_eq!(plan.axes.len(), 2, "the plan carries its resolved axes");
        // Attack 4 keeps only the 100% fraction.
        let both = plan_threshold_sweep(None, &config);
        assert_eq!(both.jobs.len(), 2);
        assert!(both.jobs.iter().all(|j| j.attack.coordinates().1 == 1.0));
        let theta = plan_theta_sweep(&[-0.2, 0.2], &[1]);
        assert_eq!(theta.kind, AttackKind::InputSpikeCorruption);
        assert_eq!(theta.jobs.len(), 2);
        let vdd = plan_vdd_sweep(&[0.8, 1.0], &[1]);
        assert_eq!(vdd.kind, AttackKind::GlobalVdd);
        assert_eq!(vdd.jobs[1].attack, CellAttack::vdd(1.0));
    }

    #[test]
    fn staged_pipeline_matches_monolithic_sweep() {
        let mut setup = tiny_setup();
        setup.n_train = 60;
        setup.n_test = 30;
        setup.network.sample_time_ms = 60.0;
        let config = SweepConfig {
            rel_changes: vec![-0.2, 0.2],
            fractions: vec![0.0, 1.0],
            seeds: vec![1],
        };
        let cache = BaselineCache::new(&setup);
        let reference =
            threshold_sweep_cached(&cache, Some(TargetLayer::Inhibitory), &config).unwrap();

        // Hand-drive the stages, executing cells in *reverse* order to
        // prove assembly is slot-addressed, not arrival-ordered.
        let plan = plan_threshold_sweep(Some(TargetLayer::Inhibitory), &config);
        let baseline_accuracy = mean_baseline_accuracy(&cache, &plan.seeds);
        let mut results = Vec::new();
        for job in plan.jobs.iter().rev() {
            results.push(execute_cell(&cache, &plan.seeds, baseline_accuracy, job, None).unwrap());
        }
        let staged = assemble_sweep(&plan, baseline_accuracy, results).unwrap();
        assert_eq!(staged.cells.len(), reference.cells.len());
        for (a, b) in staged.cells.iter().zip(&reference.cells) {
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
            assert_eq!(
                a.relative_change_percent.to_bits(),
                b.relative_change_percent.to_bits()
            );
        }
    }

    #[test]
    fn composite_cells_with_nominal_vdd_match_the_pure_threshold_sweep() {
        // threshold × vdd with the supply pinned at nominal must be
        // bit-identical to the pure threshold sweep: the composed
        // FaultPlan's extra components are exact no-ops (scale 1.0,
        // rel_change 0.0), so this proves composition changes nothing
        // it should not.
        let mut setup = tiny_setup();
        setup.n_train = 60;
        setup.n_test = 30;
        setup.network.sample_time_ms = 60.0;
        let config = SweepConfig {
            rel_changes: vec![-0.2, 0.2],
            fractions: vec![1.0],
            seeds: vec![1],
        };
        let cache = BaselineCache::new(&setup);
        let pure = threshold_sweep_cached(&cache, Some(TargetLayer::Inhibitory), &config).unwrap();

        let mut spec = ScenarioSpec::threshold(Some(TargetLayer::Inhibitory), &config);
        spec.axes.push(Axis::real(AxisKind::Vdd, vec![1.0]));
        spec.transfer = Some(PowerTransferTable::paper_nominal().points().to_vec());
        let composite = scenario_sweep_cached(&cache, &spec).unwrap();

        assert_eq!(composite.cells.len(), pure.cells.len());
        for (c, p) in composite.cells.iter().zip(&pure.cells) {
            assert_eq!(c.accuracy.to_bits(), p.accuracy.to_bits());
        }
    }

    #[test]
    fn assemble_rejects_incomplete_and_conflicting_results() {
        let cell = SweepCell {
            rel_change: -0.2,
            fraction: 1.0,
            accuracy: 0.5,
            relative_change_percent: -10.0,
        };
        let ok = assemble_cells(
            AttackKind::InhibitoryThreshold,
            Vec::new(),
            0.55,
            2,
            vec![
                CellResult { index: 1, cell },
                CellResult { index: 0, cell },
                // Identical duplicate (a retried delivery) is tolerated.
                CellResult { index: 0, cell },
            ],
        )
        .unwrap();
        assert_eq!(ok.cells.len(), 2);

        let missing = assemble_cells(
            AttackKind::InhibitoryThreshold,
            Vec::new(),
            0.55,
            2,
            vec![CellResult { index: 0, cell }],
        );
        assert!(missing.is_err());

        let out_of_range = assemble_cells(
            AttackKind::InhibitoryThreshold,
            Vec::new(),
            0.55,
            2,
            vec![CellResult { index: 7, cell }],
        );
        assert!(out_of_range.is_err());

        let conflicting = assemble_cells(
            AttackKind::InhibitoryThreshold,
            Vec::new(),
            0.55,
            1,
            vec![
                CellResult { index: 0, cell },
                CellResult {
                    index: 0,
                    cell: SweepCell {
                        accuracy: 0.9,
                        ..cell
                    },
                },
            ],
        );
        assert!(conflicting.is_err());
    }

    #[test]
    fn cell_lookup_resolves_float_artifacts_exactly() {
        // 0.1 + 0.2 is one ULP away from 0.3 in f64. The old epsilon
        // lookup could not tell two such axis points apart (both were
        // "within 1e-9"); the bit-exact lookup resolves each, and the
        // axis-index lookup needs no float comparison at all.
        let artifact: f64 = 0.1 + 0.2;
        assert_ne!(artifact.to_bits(), 0.3f64.to_bits());
        let config = SweepConfig {
            rel_changes: vec![0.3, artifact],
            fractions: vec![1.0],
            seeds: vec![1],
        };
        let plan = plan_threshold_sweep(Some(TargetLayer::Inhibitory), &config);
        let results = plan.jobs.iter().map(|job| {
            let (rel_change, fraction) = job.attack.coordinates();
            CellResult {
                index: job.index,
                cell: SweepCell {
                    rel_change,
                    fraction,
                    accuracy: job.index as f64,
                    relative_change_percent: 0.0,
                },
            }
        });
        let result = assemble_sweep(&plan, 0.5, results).unwrap();
        assert_eq!(result.cell(0.3, 1.0).unwrap().accuracy, 0.0);
        assert_eq!(result.cell(0.1 + 0.2, 1.0).unwrap().accuracy, 1.0);
        assert!(result.cell(0.30000001, 1.0).is_none());
        // Axis-index addressing: rel_change axis slot 1, fraction slot 0.
        assert_eq!(result.shape(), vec![2, 1]);
        assert_eq!(result.cell_at(&[0, 0]).unwrap().accuracy, 0.0);
        assert_eq!(result.cell_at(&[1, 0]).unwrap().accuracy, 1.0);
        assert!(result.cell_at(&[2, 0]).is_none());
        assert!(result.cell_at(&[0]).is_none(), "shape mismatch");
    }

    #[test]
    fn execute_cell_rejects_invalid_wire_jobs() {
        let setup = tiny_setup();
        let cache = BaselineCache::new(&setup);
        let bad_theta = CellJob {
            index: 0,
            attack: CellAttack::theta(-2.0),
        };
        assert!(execute_cell(&cache, &[1], 0.5, &bad_theta, None).is_err());
        let bad_fraction = CellJob {
            index: 0,
            attack: CellAttack::threshold(Some(TargetLayer::Inhibitory), -0.2, 1.5),
        };
        assert!(execute_cell(&cache, &[1], 0.5, &bad_fraction, None).is_err());
        let bad_rel = CellJob {
            index: 0,
            attack: CellAttack::threshold(Some(TargetLayer::Inhibitory), 1.5, 1.0),
        };
        assert!(execute_cell(&cache, &[1], 0.5, &bad_rel, None).is_err());
        let vdd_without_table = CellJob {
            index: 0,
            attack: CellAttack::vdd(0.8),
        };
        assert!(execute_cell(&cache, &[1], 0.5, &vdd_without_table, None).is_err());
        let bad_vdd = CellJob {
            index: 0,
            attack: CellAttack::vdd(-0.1),
        };
        assert!(execute_cell(&cache, &[1], 0.5, &bad_vdd, None).is_err());
        // Family/component mismatches from a hostile peer are errors,
        // not panics: a threshold component with no layer-naming family,
        // and a family whose primary component is missing.
        let orphan_threshold = CellJob {
            index: 0,
            attack: CellAttack {
                rel_change: Some(-0.2),
                ..CellAttack::theta(0.1)
            },
        };
        assert!(execute_cell(&cache, &[1], 0.5, &orphan_threshold, None).is_err());
        let empty_family = CellJob {
            index: 0,
            attack: CellAttack {
                family: AttackFamily::Threshold(LayerSel::Inhibitory),
                rel_change: None,
                fraction: 1.0,
                theta_change: None,
                vdd: None,
                seed: None,
                defense: DefenseSel::None,
                detector: DetectorSel::None,
                neurons: None,
            },
        };
        assert!(execute_cell(&cache, &[1], 0.5, &empty_family, None).is_err());
        // Countermeasure components without a VDD component would be
        // silent no-ops — rejected like any other wire mismatch.
        let defended_without_vdd = CellJob {
            index: 0,
            attack: CellAttack {
                defense: DefenseSel::BandgapThreshold,
                ..CellAttack::theta(0.1)
            },
        };
        assert!(execute_cell(&cache, &[1], 0.5, &defended_without_vdd, None).is_err());
        let detected_without_vdd = CellJob {
            index: 0,
            attack: CellAttack {
                detector: DetectorSel::DummyNeuron,
                ..CellAttack::theta(0.1)
            },
        };
        assert!(execute_cell(&cache, &[1], 0.5, &detected_without_vdd, None).is_err());
    }

    #[test]
    fn layer_cells_simulate_the_analog_layer() {
        let setup = tiny_setup();
        let cache = BaselineCache::new(&setup);
        let table = PowerTransferTable::paper_nominal();
        // At the nominal supply the layer is its own reference: no
        // second simulation and exactly zero relative change.
        let nominal = CellJob {
            index: 0,
            attack: CellAttack {
                neurons: Some(2),
                ..CellAttack::vdd(1.0)
            },
        };
        let cell = execute_cell(&cache, &[1], 0.5, &nominal, Some(&table))
            .unwrap()
            .cell;
        assert!(cell.accuracy > 0.0, "nominal layer fires: {cell:?}");
        assert_eq!(cell.relative_change_percent, 0.0);
        // Undervolting the Axon Hillock layer speeds it up (Fig. 6b),
        // so the attacked cell moves away from the reference.
        let attacked = CellJob {
            index: 1,
            attack: CellAttack {
                neurons: Some(2),
                ..CellAttack::vdd(0.8)
            },
        };
        let hit = execute_cell(&cache, &[1], 0.5, &attacked, Some(&table))
            .unwrap()
            .cell;
        assert!(hit.accuracy >= cell.accuracy, "{hit:?}");
        assert!(hit.relative_change_percent.is_finite());
        // Transfer-table-only hardenings have no circuit to build.
        let unbuildable = CellJob {
            index: 2,
            attack: CellAttack {
                neurons: Some(2),
                defense: DefenseSel::RobustDriver,
                ..CellAttack::vdd(0.8)
            },
        };
        assert!(execute_cell(&cache, &[1], 0.5, &unbuildable, Some(&table)).is_err());
        // Hostile peers can't smuggle an empty or oversized layer.
        for bad in [0, crate::scenario::MAX_LAYER_NEURONS + 1] {
            let job = CellJob {
                index: 3,
                attack: CellAttack {
                    neurons: Some(bad),
                    ..CellAttack::vdd(0.8)
                },
            };
            assert!(execute_cell(&cache, &[1], 0.5, &job, Some(&table)).is_err());
        }
    }

    #[test]
    fn defended_cells_sample_the_hardened_table() {
        use crate::defense::Defense;

        let table = PowerTransferTable::paper_nominal();
        let undefended = compose_fault_plan(&CellAttack::vdd(0.8), Some(&table), 0).unwrap();
        let defended = compose_fault_plan(
            &CellAttack {
                defense: DefenseSel::BandgapThreshold,
                ..CellAttack::vdd(0.8)
            },
            Some(&table),
            0,
        )
        .unwrap();
        // The bandgap reference pins the IF threshold: the defended
        // plan must equal from_vdd over the hardened table, and differ
        // from the raw one.
        assert_ne!(defended, undefended);
        assert_eq!(
            defended,
            FaultPlan::from_vdd(0.8, &Defense::BandgapThreshold.harden_table(&table))
        );
        // The undefended path stays byte-for-byte the legacy plan.
        assert_eq!(undefended, FaultPlan::from_vdd(0.8, &table));
    }

    #[test]
    fn countermeasures_derive_from_the_attack_not_the_measurement() {
        use crate::detection::DetectionOutcome;

        let table = PowerTransferTable::paper_nominal();
        let armed = |vdd: f64| CellAttack {
            detector: DetectorSel::DummyNeuron,
            ..CellAttack::vdd(vdd)
        };
        // Deep undervolting trips the 10% rule; the nominal supply
        // stays quiet; a hair off nominal is a miss, not a hit.
        let hit = cell_countermeasures(&armed(0.8), Some(&table));
        assert_eq!(hit.detection, Some(DetectionOutcome::Detected));
        assert!(hit.deviation_percent.unwrap() <= -10.0, "{hit:?}");
        let quiet = cell_countermeasures(&armed(1.0), Some(&table));
        assert_eq!(quiet.detection, Some(DetectionOutcome::Quiet));
        let miss = cell_countermeasures(&armed(0.99), Some(&table));
        assert_eq!(miss.detection, Some(DetectionOutcome::Missed));

        // Overhead follows the paper's accounting; an unarmed cell
        // derives nothing.
        let defended = cell_countermeasures(
            &CellAttack {
                defense: DefenseSel::BandgapThreshold,
                ..CellAttack::vdd(0.8)
            },
            Some(&table),
        );
        assert_eq!(defended.power_overhead_percent, 0.0);
        assert_eq!(defended.area_overhead_percent, 65.0);
        assert_eq!(defended.detection, None);
        let legacy = cell_countermeasures(&CellAttack::vdd(0.8), Some(&table));
        assert_eq!(legacy.power_overhead_percent, 0.0);
        assert_eq!(legacy.detection, None);

        // The detector senses the raw supply: a defense never changes
        // the detection outcome.
        let defended_and_armed = cell_countermeasures(
            &CellAttack {
                defense: DefenseSel::RobustDriver,
                ..armed(0.8)
            },
            Some(&table),
        );
        assert_eq!(
            defended_and_armed.detection,
            Some(DetectionOutcome::Detected)
        );
        assert_eq!(defended_and_armed.deviation_percent, hit.deviation_percent);
    }

    #[test]
    fn composed_fault_plans_match_the_legacy_attacks() {
        use crate::attacks::{GlobalVddAttack, InputCorruptionAttack, ThresholdAttack};

        // Pure cells must compose the exact FaultPlans the paper's five
        // attack implementations produce — this is what keeps the new
        // planner bit-identical to the legacy entry points.
        let threshold = compose_fault_plan(
            &CellAttack::threshold(Some(TargetLayer::Inhibitory), -0.2, 0.75),
            None,
            0,
        )
        .unwrap();
        assert_eq!(
            threshold,
            ThresholdAttack::inhibitory(-0.2, 0.75).fault_plan()
        );
        let both = compose_fault_plan(&CellAttack::threshold(None, -0.2, 1.0), None, 0).unwrap();
        assert_eq!(both, ThresholdAttack::both(-0.2).fault_plan());
        let theta = compose_fault_plan(&CellAttack::theta(-0.2), None, 0).unwrap();
        assert_eq!(theta, InputCorruptionAttack::new(-0.2).fault_plan());
        let table = PowerTransferTable::paper_nominal();
        let vdd = compose_fault_plan(&CellAttack::vdd(0.8), Some(&table), 0).unwrap();
        assert_eq!(vdd, GlobalVddAttack::new(0.8).fault_plan());

        // A composite stacks: vdd table faults, theta on the drive,
        // threshold override appended last.
        let composite = compose_fault_plan(
            &CellAttack {
                theta_change: Some(-0.1),
                vdd: Some(0.9),
                ..CellAttack::threshold(Some(TargetLayer::Inhibitory), -0.2, 0.5)
            },
            Some(&table),
            0,
        )
        .unwrap();
        assert_eq!(composite.thresholds.len(), 3, "vdd pair + override");
        assert_eq!(composite.thresholds[2].layer, TargetLayer::Inhibitory);
        assert_eq!(composite.thresholds[2].fraction, 0.5);
        let vdd_drive = GlobalVddAttack::new(0.9).fault_plan().drive.unwrap().scale;
        assert_eq!(
            composite.drive.unwrap().scale.to_bits(),
            (vdd_drive * 0.9).to_bits()
        );
    }

    #[test]
    fn seed_override_cells_measure_that_seed_only() {
        let mut setup = tiny_setup();
        setup.n_train = 60;
        setup.n_test = 30;
        setup.network.sample_time_ms = 60.0;
        let cache = BaselineCache::new(&setup);
        let baseline_accuracy = mean_baseline_accuracy(&cache, &[1, 2]);
        let job_for = |seed: Option<u64>| CellJob {
            index: 0,
            attack: CellAttack {
                seed,
                ..CellAttack::theta(0.0)
            },
        };
        // theta = 0 is a no-op, so each cell's accuracy is its seeds'
        // mean baseline: the override pins a single seed.
        let pinned =
            execute_cell(&cache, &[1, 2], baseline_accuracy, &job_for(Some(2)), None).unwrap();
        assert_eq!(
            pinned.cell.accuracy.to_bits(),
            cache.get(2).accuracy.to_bits()
        );
        let averaged =
            execute_cell(&cache, &[1, 2], baseline_accuracy, &job_for(None), None).unwrap();
        assert_eq!(
            averaged.cell.accuracy.to_bits(),
            baseline_accuracy.to_bits()
        );
    }

    #[test]
    fn run_indexed_preserves_index_order() {
        for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
            let out = run_indexed(64, parallelism, |i| i * 3);
            assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
        }
        let empty = run_indexed(0, Parallelism::Threads(4), |i| i);
        assert!(empty.is_empty());
    }
}
