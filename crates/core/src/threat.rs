//! Threat-model taxonomy (paper §I and §III-A).

use std::fmt;

/// What the adversary knows about the SNN (paper §I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessLevel {
    /// No knowledge of architecture, parameters or layout; only control of
    /// the shared external supply.
    BlackBox,
    /// Knows the layout well enough to target individual layers or
    /// peripherals (e.g. via invasive reverse engineering + laser).
    WhiteBox,
}

impl fmt::Display for AccessLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessLevel::BlackBox => write!(f, "black-box"),
            AccessLevel::WhiteBox => write!(f, "white-box"),
        }
    }
}

/// The power-domain assumptions of §III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerDomainScenario {
    /// Case 1: current drivers and neurons on separate VDD domains —
    /// components can be attacked individually.
    SeparateDomains,
    /// Case 2: one shared VDD for the whole SNN.
    SingleDomain,
    /// Case 3: fine-grained local glitching (focused laser) inside a
    /// domain — fractions of a layer can be attacked.
    LocalGlitch,
}

impl fmt::Display for PowerDomainScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerDomainScenario::SeparateDomains => write!(f, "separate power domains"),
            PowerDomainScenario::SingleDomain => write!(f, "single power domain"),
            PowerDomainScenario::LocalGlitch => write!(f, "local power glitching"),
        }
    }
}

/// The five attack models of §IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Attack 1: corrupt the input current drivers (the per-spike membrane
    /// voltage change, "theta"). White box — requires driver locations.
    InputSpikeCorruption,
    /// Attack 2: threshold manipulation of the excitatory layer only.
    ExcitatoryThreshold,
    /// Attack 3: threshold manipulation of the inhibitory layer only.
    InhibitoryThreshold,
    /// Attack 4: threshold manipulation of both layers (100%).
    BothLayerThreshold,
    /// Attack 5: global VDD manipulation of the whole system (drivers and
    /// all neuron layers). The only black-box attack.
    GlobalVdd,
}

impl AttackKind {
    /// The paper's attack number (1–5).
    pub fn paper_id(self) -> u8 {
        match self {
            AttackKind::InputSpikeCorruption => 1,
            AttackKind::ExcitatoryThreshold => 2,
            AttackKind::InhibitoryThreshold => 3,
            AttackKind::BothLayerThreshold => 4,
            AttackKind::GlobalVdd => 5,
        }
    }

    /// Adversary knowledge required.
    pub fn access_level(self) -> AccessLevel {
        match self {
            AttackKind::GlobalVdd => AccessLevel::BlackBox,
            _ => AccessLevel::WhiteBox,
        }
    }

    /// The power-domain scenario the attack assumes.
    pub fn power_scenario(self) -> PowerDomainScenario {
        match self {
            AttackKind::InputSpikeCorruption => PowerDomainScenario::SeparateDomains,
            AttackKind::ExcitatoryThreshold | AttackKind::InhibitoryThreshold => {
                PowerDomainScenario::LocalGlitch
            }
            AttackKind::BothLayerThreshold => PowerDomainScenario::LocalGlitch,
            AttackKind::GlobalVdd => PowerDomainScenario::SingleDomain,
        }
    }

    /// The paper figure reporting this attack's results.
    pub fn paper_figure(self) -> &'static str {
        match self {
            AttackKind::InputSpikeCorruption => "Fig. 7b",
            AttackKind::ExcitatoryThreshold => "Fig. 8a",
            AttackKind::InhibitoryThreshold => "Fig. 8b",
            AttackKind::BothLayerThreshold => "Fig. 8c",
            AttackKind::GlobalVdd => "Fig. 9a",
        }
    }

    /// The paper's reported worst-case relative accuracy change, percent.
    pub fn paper_worst_case_percent(self) -> f64 {
        match self {
            AttackKind::InputSpikeCorruption => -1.5,
            AttackKind::ExcitatoryThreshold => -7.32,
            AttackKind::InhibitoryThreshold => -84.52,
            AttackKind::BothLayerThreshold => -85.65,
            AttackKind::GlobalVdd => -84.93,
        }
    }

    /// All five attacks in paper order.
    pub fn all() -> [AttackKind; 5] {
        [
            AttackKind::InputSpikeCorruption,
            AttackKind::ExcitatoryThreshold,
            AttackKind::InhibitoryThreshold,
            AttackKind::BothLayerThreshold,
            AttackKind::GlobalVdd,
        ]
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackKind::InputSpikeCorruption => write!(f, "attack 1: input spike corruption"),
            AttackKind::ExcitatoryThreshold => {
                write!(f, "attack 2: excitatory-layer threshold manipulation")
            }
            AttackKind::InhibitoryThreshold => {
                write!(f, "attack 3: inhibitory-layer threshold manipulation")
            }
            AttackKind::BothLayerThreshold => {
                write!(f, "attack 4: both-layer threshold manipulation")
            }
            AttackKind::GlobalVdd => write!(f, "attack 5: global vdd manipulation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ids_are_one_to_five() {
        let ids: Vec<u8> = AttackKind::all().iter().map(|a| a.paper_id()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn only_attack5_is_black_box() {
        for kind in AttackKind::all() {
            let expect = if kind == AttackKind::GlobalVdd {
                AccessLevel::BlackBox
            } else {
                AccessLevel::WhiteBox
            };
            assert_eq!(kind.access_level(), expect, "{kind}");
        }
    }

    #[test]
    fn worst_cases_match_paper_text() {
        assert_eq!(
            AttackKind::BothLayerThreshold.paper_worst_case_percent(),
            -85.65
        );
        assert_eq!(
            AttackKind::InhibitoryThreshold.paper_worst_case_percent(),
            -84.52
        );
    }

    #[test]
    fn displays_are_informative() {
        for kind in AttackKind::all() {
            let text = kind.to_string();
            assert!(text.contains(&format!("attack {}", kind.paper_id())));
        }
        assert_eq!(AccessLevel::BlackBox.to_string(), "black-box");
        assert!(PowerDomainScenario::LocalGlitch
            .to_string()
            .contains("glitch"));
    }
}
