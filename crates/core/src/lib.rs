//! # neurofi-core
//!
//! The primary contribution of *"Analysis of Power-Oriented Fault
//! Injection Attacks on Spiking Neural Networks"* (DATE 2022), in Rust:
//!
//! * [`threat`] — the threat-model taxonomy (§I, §III-A): black-box vs
//!   white-box access, the three power-domain scenarios, and the five
//!   attack models.
//! * [`injection`] — [`FaultPlan`]: translates a threat (which layer,
//!   what fraction of neurons, how much threshold/drive corruption) into
//!   concrete state changes on a [`neurofi_snn::DiehlCook2015`] network.
//! * [`attacks`] — runnable implementations of Attacks 1–5 producing
//!   baseline-vs-attacked accuracy outcomes (the data behind Figs. 7b,
//!   8a–c, 9a).
//! * [`scenario`] — declarative N-axis scenario specifications
//!   ([`ScenarioSpec`]): an attack family plus an ordered list of typed
//!   axes (`rel_change`, `fraction`, `theta_change`, `vdd`, `layer`,
//!   `polarity`, `seed`, `defense`, `detector`), with a textual grammar,
//!   that one generic
//!   planner flattens into the sweep pipeline — the paper's grids and
//!   arbitrary cross products (e.g. threshold × VDD) alike.
//! * [`sweep`] — the parallel grid-sweep engine that regenerates the
//!   paper's accuracy surfaces on a work-stealing pool with memoised
//!   per-seed baselines ([`BaselineCache`]); serial and parallel runs
//!   are bit-identical. The engine is staged (enumerate → execute →
//!   assemble) so external schedulers like the `neurofi-dist`
//!   coordinator can run the same [`CellJob`]s on other machines, and
//!   results are addressed by axis indices
//!   ([`sweep::SweepResult::cell_at`]).
//! * [`defense`] — the §V defenses (robust driver, bandgap threshold,
//!   neuron sizing, comparator first stage) as transfer-function
//!   hardenings, with overhead accounting.
//! * [`detection`] — the dummy-neuron voltage-glitch detector (§V-C,
//!   Figs. 10b/10c) with its ≥10% spike-count deviation rule.
//! * [`report`] — result tables with paper-reference columns.
//!
//! The circuit-to-behaviour bridge is
//! [`neurofi_analog::PowerTransferTable`]: VDD → (drive scale, threshold
//! scales), either measured from the transistor-level simulator or taken
//! from the paper's reported endpoints.
//!
//! ## Example: Attack 3 (inhibitory-layer threshold fault)
//!
//! ```no_run
//! use neurofi_core::{Attack, ThresholdAttack};
//! use neurofi_core::attacks::ExperimentSetup;
//!
//! let setup = ExperimentSetup::quick(42);
//! let outcome = ThresholdAttack::inhibitory(-0.20, 1.0).run(&setup)?;
//! assert!(outcome.attacked_accuracy < 0.5 * outcome.baseline_accuracy);
//! # Ok::<(), neurofi_core::Error>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod attacks;
pub mod defense;
pub mod detection;
pub mod error;
pub mod extensions;
pub mod injection;
pub mod report;
pub mod scenario;
pub mod sweep;
pub mod threat;

pub use attacks::{Attack, AttackOutcome, GlobalVddAttack, InputCorruptionAttack, ThresholdAttack};
pub use defense::{Defense, OverheadEstimate};
pub use detection::{DetectionOutcome, DummyNeuronDetector};
pub use error::Error;
pub use injection::{FaultPlan, Selection, TargetLayer, ThresholdConvention};
pub use neurofi_analog::PowerTransferTable;
pub use report::Table;
pub use scenario::{
    AttackFamily, Axis, AxisKind, AxisValues, DefenseSel, DetectorSel, LayerSel, ScenarioSpec,
};
pub use sweep::{
    cell_countermeasures, BaselineCache, CellAttack, CellCountermeasures, CellJob, CellResult,
    Parallelism, SweepCell, SweepConfig, SweepPlan, SweepResult,
};
pub use threat::{AccessLevel, AttackKind, PowerDomainScenario};
