//! Result tables with paper-reference columns, rendered as markdown or
//! CSV. The reproduction harness (`neurofi-bench`) builds one table per
//! paper figure and records them in EXPERIMENTS.md.

use std::fmt;

/// A simple column-oriented result table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Table title (usually the paper figure id).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells, each row the same length as `headers`.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes rendered under the table (substitutions, known
    /// deviations).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} does not match header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Appends a row of displayable values.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn push_display_row(&mut self, cells: &[&dyn fmt::Display]) {
        let rendered: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.push_row(&rendered);
    }

    /// Appends a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n*{note}*\n"));
        }
        out
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing
    /// commas, quotes or newlines). Notes are omitted.
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

/// Formats a fraction as a percent string with one decimal.
pub fn percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Formats a signed percent change with two decimals.
pub fn signed_percent(value: f64) -> String {
    format!("{value:+.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig. 8b", &["threshold", "fraction", "accuracy"]);
        t.push_row(&["-20%".into(), "100%".into(), "11.2%".into()]);
        t.push_note("synthetic digits instead of MNIST");
        t
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.contains("### Fig. 8b"));
        assert!(md.contains("| threshold | fraction | accuracy |"));
        assert!(md.contains("| -20% | 100% | 11.2% |"));
        assert!(md.contains("*synthetic digits instead of MNIST*"));
    }

    #[test]
    fn csv_rendering_and_quoting() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(&["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn display_rows() {
        let mut t = Table::new("x", &["n", "v"]);
        t.push_display_row(&[&3usize, &1.5f64]);
        assert_eq!(t.rows[0], vec!["3", "1.5"]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(&["only-one".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(percent(0.7592), "75.9%");
        assert_eq!(signed_percent(-85.65), "-85.65%");
        assert_eq!(signed_percent(3.2), "+3.20%");
    }

    #[test]
    fn len_and_empty() {
        assert!(Table::new("t", &["a"]).is_empty());
        assert_eq!(sample().len(), 1);
    }
}
