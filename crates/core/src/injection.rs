//! Fault plans: concrete parameter corruption applied to a network.
//!
//! A [`FaultPlan`] is the bridge between a threat description ("lower the
//! inhibitory layer's threshold by 20% on 60% of its neurons") and the
//! fault hooks exposed by `neurofi-snn` (per-neuron `threshold_scale`,
//! connection `gain`).

use neurofi_analog::PowerTransferTable;
use neurofi_snn::diehl_cook::DiehlCook2015;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which population a threshold fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetLayer {
    /// The excitatory layer (EL).
    Excitatory,
    /// The inhibitory layer (IL).
    Inhibitory,
}

impl std::fmt::Display for TargetLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TargetLayer::Excitatory => write!(f, "excitatory"),
            TargetLayer::Inhibitory => write!(f, "inhibitory"),
        }
    }
}

/// How the affected subset of a layer is chosen when the fraction is
/// below 100% (the paper's local-glitch scenario, §III-A case 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Selection {
    /// The first ⌈fraction·n⌉ neurons (a physically contiguous region,
    /// as a focused glitch would hit).
    FirstK,
    /// A seeded uniform random subset.
    RandomSeeded(u64),
}

/// How a "threshold change of x%" maps onto the behavioural model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThresholdConvention {
    /// Scale the signed biological threshold (−52 mV → −41.6 mV for
    /// −20%), exactly as the paper applies its sweep to BindsNET
    /// parameters. Negative changes make neurons *harder* to fire. This is
    /// the paper-reproducing default; see DESIGN.md for the polarity
    /// discussion.
    #[default]
    PaperSignedScale,
    /// Scale the threshold's distance from rest (13 mV → 10.4 mV for
    /// −20%), the circuit-faithful direction where negative changes make
    /// neurons *easier* to fire.
    DistanceFromRest,
}

/// A threshold fault on one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdFault {
    /// Target population.
    pub layer: TargetLayer,
    /// Relative threshold change (−0.20 for the paper's "−20%").
    pub rel_change: f64,
    /// Fraction of the layer affected, in `[0, 1]`.
    pub fraction: f64,
    /// Subset selection strategy.
    pub selection: Selection,
    /// Interpretation of `rel_change`.
    pub convention: ThresholdConvention,
}

/// A drive (input-spike amplitude / "theta") fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriveFault {
    /// Multiplicative scale on the input drive (0.8 for "−20% theta").
    pub scale: f64,
}

/// A complete, applicable set of faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Threshold faults (at most one per layer is meaningful).
    pub thresholds: Vec<ThresholdFault>,
    /// Optional drive fault.
    pub drive: Option<DriveFault>,
}

impl FaultPlan {
    /// An empty (no-op) plan.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Attack-1 style plan: scale the input drive only.
    ///
    /// # Panics
    /// Panics if `scale` is not positive and finite.
    pub fn drive_only(scale: f64) -> FaultPlan {
        assert!(
            scale.is_finite() && scale > 0.0,
            "drive scale must be positive"
        );
        FaultPlan {
            thresholds: Vec::new(),
            drive: Some(DriveFault { scale }),
        }
    }

    /// Threshold fault on one layer with the paper's signed-scale
    /// convention and contiguous selection.
    ///
    /// # Panics
    /// Panics if `fraction` is outside `[0, 1]` or `rel_change` is not in
    /// `(-1, 1)`.
    pub fn layer_threshold(layer: TargetLayer, rel_change: f64, fraction: f64) -> FaultPlan {
        Self::validate(rel_change, fraction);
        FaultPlan {
            thresholds: vec![ThresholdFault {
                layer,
                rel_change,
                fraction,
                selection: Selection::FirstK,
                convention: ThresholdConvention::PaperSignedScale,
            }],
            drive: None,
        }
    }

    /// Attack-4 style plan: the same threshold change on 100% of both
    /// layers.
    ///
    /// # Panics
    /// Panics if `rel_change` is not in `(-1, 1)`.
    pub fn both_layer_threshold(rel_change: f64) -> FaultPlan {
        Self::validate(rel_change, 1.0);
        FaultPlan {
            thresholds: vec![
                ThresholdFault {
                    layer: TargetLayer::Excitatory,
                    rel_change,
                    fraction: 1.0,
                    selection: Selection::FirstK,
                    convention: ThresholdConvention::PaperSignedScale,
                },
                ThresholdFault {
                    layer: TargetLayer::Inhibitory,
                    rel_change,
                    fraction: 1.0,
                    selection: Selection::FirstK,
                    convention: ThresholdConvention::PaperSignedScale,
                },
            ],
            drive: None,
        }
    }

    /// Attack-5 style plan: derive drive and threshold corruption for the
    /// whole system from a supply voltage via the circuit transfer table.
    ///
    /// Both neuron layers take the threshold change of the I&F
    /// characterisation (the network-level neurons are I&F models); the
    /// drive scale comes from the current-driver characterisation.
    pub fn from_vdd(vdd: f64, transfer: &PowerTransferTable) -> FaultPlan {
        let point = transfer.sample(vdd);
        let rel = point.if_threshold_scale - 1.0;
        FaultPlan {
            thresholds: vec![
                ThresholdFault {
                    layer: TargetLayer::Excitatory,
                    rel_change: rel,
                    fraction: 1.0,
                    selection: Selection::FirstK,
                    convention: ThresholdConvention::PaperSignedScale,
                },
                ThresholdFault {
                    layer: TargetLayer::Inhibitory,
                    rel_change: rel,
                    fraction: 1.0,
                    selection: Selection::FirstK,
                    convention: ThresholdConvention::PaperSignedScale,
                },
            ],
            drive: Some(DriveFault {
                scale: point.drive_scale,
            }),
        }
    }

    fn validate(rel_change: f64, fraction: f64) {
        assert!(
            rel_change.is_finite() && rel_change > -1.0 && rel_change < 1.0,
            "relative threshold change must be within (-1, 1), got {rel_change}"
        );
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be within [0, 1], got {fraction}"
        );
    }

    /// Indices of the affected neurons for a layer of `n` under the given
    /// fraction/selection.
    pub fn affected_indices(n: usize, fraction: f64, selection: Selection) -> Vec<usize> {
        let k = ((n as f64) * fraction).round() as usize;
        let k = k.min(n);
        match selection {
            Selection::FirstK => (0..k).collect(),
            Selection::RandomSeeded(seed) => {
                let mut all: Vec<usize> = (0..n).collect();
                let mut rng = StdRng::seed_from_u64(seed);
                all.shuffle(&mut rng);
                let mut chosen: Vec<usize> = all.into_iter().take(k).collect();
                chosen.sort_unstable();
                chosen
            }
        }
    }

    /// Applies the plan to a network (on top of its current state; use
    /// [`DiehlCook2015::clear_faults`] first for a clean slate).
    pub fn apply(&self, net: &mut DiehlCook2015) {
        for fault in &self.thresholds {
            let layer = match fault.layer {
                TargetLayer::Excitatory => &mut net.excitatory,
                TargetLayer::Inhibitory => &mut net.inhibitory,
            };
            let scale = match fault.convention {
                ThresholdConvention::PaperSignedScale => (1.0 + fault.rel_change) as f32,
                ThresholdConvention::DistanceFromRest => {
                    let p = layer.params();
                    let distance = p.v_thresh - p.v_rest;
                    let new_thresh = p.v_rest + distance * (1.0 + fault.rel_change) as f32;
                    new_thresh / p.v_thresh
                }
            };
            let n = layer.len();
            for idx in Self::affected_indices(n, fault.fraction, fault.selection) {
                layer.threshold_scale[idx] = scale;
            }
        }
        if let Some(drive) = &self.drive {
            net.input_to_exc.gain = drive.scale as f32;
        }
    }

    /// True when the plan changes nothing.
    pub fn is_noop(&self) -> bool {
        self.thresholds
            .iter()
            .all(|t| t.rel_change == 0.0 || t.fraction == 0.0)
            && self.drive.is_none_or(|d| d.scale == 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofi_snn::diehl_cook::{DiehlCook2015, DiehlCookConfig};

    fn net() -> DiehlCook2015 {
        DiehlCook2015::new(DiehlCookConfig::quick(), 0)
    }

    #[test]
    fn drive_plan_sets_gain() {
        let mut n = net();
        FaultPlan::drive_only(0.8).apply(&mut n);
        assert!((n.input_to_exc.gain - 0.8).abs() < 1e-6);
        assert!(n.excitatory.threshold_scale.iter().all(|&s| s == 1.0));
    }

    #[test]
    fn layer_threshold_respects_fraction() {
        let mut n = net();
        FaultPlan::layer_threshold(TargetLayer::Inhibitory, -0.2, 0.4).apply(&mut n);
        let affected = n
            .inhibitory
            .threshold_scale
            .iter()
            .filter(|&&s| (s - 0.8).abs() < 1e-6)
            .count();
        assert_eq!(affected, 40);
        assert!(n.excitatory.threshold_scale.iter().all(|&s| s == 1.0));
    }

    #[test]
    fn both_layers_plan_hits_both() {
        let mut n = net();
        FaultPlan::both_layer_threshold(0.1).apply(&mut n);
        assert!(n
            .excitatory
            .threshold_scale
            .iter()
            .all(|&s| (s - 1.1).abs() < 1e-6));
        assert!(n
            .inhibitory
            .threshold_scale
            .iter()
            .all(|&s| (s - 1.1).abs() < 1e-6));
    }

    #[test]
    fn distance_convention_flips_direction() {
        // −20% distance-from-rest must make the neuron easier to fire
        // (threshold closer to rest), the circuit-faithful direction.
        let mut paper_net = net();
        FaultPlan {
            thresholds: vec![ThresholdFault {
                layer: TargetLayer::Excitatory,
                rel_change: -0.2,
                fraction: 1.0,
                selection: Selection::FirstK,
                convention: ThresholdConvention::DistanceFromRest,
            }],
            drive: None,
        }
        .apply(&mut paper_net);
        let p = paper_net.excitatory.params().clone();
        let effective = p.v_thresh * paper_net.excitatory.threshold_scale[0];
        let expect = p.v_rest + (p.v_thresh - p.v_rest) * 0.8;
        assert!((effective - expect).abs() < 1e-4);
        assert!(
            effective < p.v_thresh,
            "easier to fire: closer to rest from above? "
        );
    }

    #[test]
    fn random_selection_is_seeded_and_sized() {
        let a = FaultPlan::affected_indices(100, 0.3, Selection::RandomSeeded(5));
        let b = FaultPlan::affected_indices(100, 0.3, Selection::RandomSeeded(5));
        let c = FaultPlan::affected_indices(100, 0.3, Selection::RandomSeeded(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 30);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
    }

    #[test]
    fn fraction_edge_cases() {
        assert!(FaultPlan::affected_indices(100, 0.0, Selection::FirstK).is_empty());
        assert_eq!(
            FaultPlan::affected_indices(100, 1.0, Selection::FirstK).len(),
            100
        );
        // Rounding: 0.25 of 10 = 2.5 -> 3 (round-half-up).
        assert_eq!(
            FaultPlan::affected_indices(10, 0.25, Selection::FirstK).len(),
            3
        );
    }

    #[test]
    fn from_vdd_uses_transfer_table() {
        let table = PowerTransferTable::paper_nominal();
        let plan = FaultPlan::from_vdd(0.8, &table);
        assert_eq!(plan.thresholds.len(), 2);
        assert!((plan.thresholds[0].rel_change + 0.1801).abs() < 1e-9);
        assert!((plan.drive.unwrap().scale - 0.68).abs() < 1e-12);
        // Nominal VDD is a no-op.
        assert!(FaultPlan::from_vdd(1.0, &table).is_noop());
    }

    #[test]
    fn noop_detection() {
        assert!(FaultPlan::none().is_noop());
        assert!(FaultPlan::layer_threshold(TargetLayer::Excitatory, 0.0, 1.0).is_noop());
        assert!(!FaultPlan::drive_only(0.8).is_noop());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_bad_fraction() {
        FaultPlan::layer_threshold(TargetLayer::Excitatory, -0.2, 1.5);
    }
}
