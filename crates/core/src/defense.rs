//! The paper's §V defenses, modelled as hardenings of the VDD →
//! parameter transfer function, plus overhead accounting.
//!
//! Each defense removes (or shrinks) one coupling between the supply
//! voltage and a behavioural parameter:
//!
//! | defense | protects | residual sensitivity | overhead (paper) |
//! |---|---|---|---|
//! | robust current driver (Fig. 9b) | drive amplitude | bandgap ±0.56% | +3% power |
//! | bandgap threshold (§V-B1) | VAIF threshold | ±0.56% | 65% area @ 200 neurons |
//! | first-stage sizing (Fig. 9c) | AH threshold | ~29% of stock | +25% power |
//! | comparator first stage (Fig. 10a) | AH threshold | bandgap ±0.56% | +11% power |

use neurofi_analog::transfer::TransferPoint;
use neurofi_analog::{BandgapReference, NeuronKind, PowerTransferTable};

use crate::attacks::{Attack, AttackOutcome, ExperimentSetup, GlobalVddAttack, RunMeasurement};
use crate::error::Error;
use crate::injection::FaultPlan;

/// One of the paper's defenses.
#[derive(Debug, Clone, PartialEq)]
pub enum Defense {
    /// Op-amp + bandgap current driver (Fig. 9b): pins the drive
    /// amplitude to the bandgap's residual.
    RobustDriver,
    /// Bandgap-generated `Vthr` for the VAIF neuron (§V-B1): pins the
    /// I&F threshold to the bandgap's residual.
    BandgapThreshold,
    /// Axon Hillock first-stage sizing (Fig. 9c): shrinks the AH
    /// threshold sensitivity by `1 − residual_factor`.
    SizedNeuron {
        /// Fraction of the stock threshold sensitivity that remains
        /// (paper: −5.23% / −18.01% ≈ 0.29 at W/L 32:1).
        residual_factor: f64,
    },
    /// Comparator first stage for the AH neuron (Fig. 10a): threshold
    /// follows a bandgap reference.
    ComparatorFirstStage,
}

impl Defense {
    /// The paper's sizing defense at W/L = 32:1.
    pub fn sized_neuron_paper() -> Defense {
        Defense::SizedNeuron {
            residual_factor: 5.23 / 18.01,
        }
    }

    /// Overheads as reported by the paper (§V). `area_percent` for the
    /// bandgap assumes the paper's 200-neuron SNN.
    pub fn paper_overhead(&self) -> OverheadEstimate {
        match self {
            Defense::RobustDriver => OverheadEstimate {
                power_percent: 3.0,
                area_percent: 0.0,
                notes: "area negligible: neuron capacitors dominate",
            },
            Defense::BandgapThreshold => OverheadEstimate {
                power_percent: 0.0,
                area_percent: 65.0,
                notes: "65% area at 200 neurons; amortises when shared or at 10k+ neurons",
            },
            Defense::SizedNeuron { .. } => OverheadEstimate {
                power_percent: 25.0,
                area_percent: 0.0,
                notes: "area negligible: the two 1 pF capacitors dominate the neuron",
            },
            Defense::ComparatorFirstStage => OverheadEstimate {
                power_percent: 11.0,
                area_percent: 0.0,
                notes: "area negligible: the two 1 pF capacitors dominate the neuron",
            },
        }
    }

    /// Applies the defense to one transfer point, returning the hardened
    /// point.
    pub fn harden(&self, point: TransferPoint) -> TransferPoint {
        let bandgap = BandgapReference::new(0.5);
        let residual_scale = bandgap.output(point.vdd) / 0.5;
        match self {
            Defense::RobustDriver => TransferPoint {
                drive_scale: residual_scale,
                ..point
            },
            Defense::BandgapThreshold => TransferPoint {
                if_threshold_scale: residual_scale,
                ..point
            },
            Defense::SizedNeuron { residual_factor } => TransferPoint {
                ah_threshold_scale: 1.0 + (point.ah_threshold_scale - 1.0) * residual_factor,
                ..point
            },
            Defense::ComparatorFirstStage => TransferPoint {
                ah_threshold_scale: residual_scale,
                ..point
            },
        }
    }

    /// Hardens a whole transfer table.
    pub fn harden_table(&self, table: &PowerTransferTable) -> PowerTransferTable {
        PowerTransferTable::new(table.points().iter().map(|&p| self.harden(p)).collect())
    }
}

/// Power/area overhead of a defense.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadEstimate {
    /// Relative power overhead, percent.
    pub power_percent: f64,
    /// Relative area overhead, percent.
    pub area_percent: f64,
    /// Qualifier recorded alongside the numbers.
    pub notes: &'static str,
}

/// Runs Attack 5 at the given VDD against a *defended* system and reports
/// the outcome. `defenses` are applied cumulatively to the transfer
/// table; `flavor` selects which neuron's threshold characterisation the
/// network-level thresholds follow (the paper's accuracy-recovery numbers
/// for the sizing defense assume Axon Hillock neurons).
///
/// # Errors
/// Propagates attack failures.
pub fn defended_vdd_attack(
    setup: &ExperimentSetup,
    vdd: f64,
    transfer: &PowerTransferTable,
    defenses: &[Defense],
    flavor: NeuronKind,
) -> Result<AttackOutcome, Error> {
    defended_vdd_attack_with_baseline(setup, vdd, transfer, defenses, flavor, setup.baseline())
}

/// [`defended_vdd_attack`] reusing a precomputed baseline measurement
/// (e.g. from a [`crate::sweep::BaselineCache`]) instead of retraining
/// the fault-free network.
///
/// # Errors
/// Propagates attack failures.
pub fn defended_vdd_attack_with_baseline(
    setup: &ExperimentSetup,
    vdd: f64,
    transfer: &PowerTransferTable,
    defenses: &[Defense],
    flavor: NeuronKind,
    baseline: RunMeasurement,
) -> Result<AttackOutcome, Error> {
    let mut hardened = transfer.clone();
    for defense in defenses {
        hardened = defense.harden_table(&hardened);
    }
    // Build the plan against the flavor's threshold column.
    let point = hardened.sample(vdd);
    let thr_scale = match flavor {
        NeuronKind::AxonHillock => point.ah_threshold_scale,
        NeuronKind::VoltageAmplifierIf => point.if_threshold_scale,
    };
    let mut plan = FaultPlan::both_layer_threshold(thr_scale - 1.0);
    plan.drive = Some(crate::injection::DriveFault {
        scale: point.drive_scale,
    });

    let attacked = setup.run_with_plan(&plan);
    Ok(AttackOutcome {
        kind: crate::threat::AttackKind::GlobalVdd,
        baseline_accuracy: baseline.accuracy,
        attacked_accuracy: attacked.accuracy,
        baseline,
        attacked,
        plan,
    })
}

/// Convenience: the undefended counterpart of [`defended_vdd_attack`]
/// with matching flavor semantics.
///
/// # Errors
/// Propagates attack failures.
pub fn undefended_vdd_attack(
    setup: &ExperimentSetup,
    vdd: f64,
    transfer: &PowerTransferTable,
    flavor: NeuronKind,
) -> Result<AttackOutcome, Error> {
    undefended_vdd_attack_with_baseline(setup, vdd, transfer, flavor, setup.baseline())
}

/// [`undefended_vdd_attack`] reusing a precomputed baseline measurement.
///
/// # Errors
/// Propagates attack failures.
pub fn undefended_vdd_attack_with_baseline(
    setup: &ExperimentSetup,
    vdd: f64,
    transfer: &PowerTransferTable,
    flavor: NeuronKind,
    baseline: RunMeasurement,
) -> Result<AttackOutcome, Error> {
    match flavor {
        // The stock table's I&F column is what GlobalVddAttack uses.
        NeuronKind::VoltageAmplifierIf => GlobalVddAttack::new(vdd)
            .with_transfer(transfer.clone())
            .run_with_baseline(setup, baseline),
        NeuronKind::AxonHillock => {
            defended_vdd_attack_with_baseline(setup, vdd, transfer, &[], flavor, baseline)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_driver_pins_drive() {
        let table = PowerTransferTable::paper_nominal();
        let hardened = Defense::RobustDriver.harden_table(&table);
        let p = hardened.sample(0.8);
        assert!((p.drive_scale - 1.0).abs() <= 0.0056 + 1e-9, "{p:?}");
        // Threshold columns untouched.
        assert!((p.if_threshold_scale - 0.8199).abs() < 1e-9);
    }

    #[test]
    fn bandgap_pins_if_threshold() {
        let table = PowerTransferTable::paper_nominal();
        let p = Defense::BandgapThreshold.harden_table(&table).sample(0.8);
        assert!((p.if_threshold_scale - 1.0).abs() <= 0.0056 + 1e-9);
        assert!((p.drive_scale - 0.68).abs() < 1e-9, "drive untouched");
    }

    #[test]
    fn sizing_shrinks_ah_sensitivity() {
        let table = PowerTransferTable::paper_nominal();
        let p = Defense::sized_neuron_paper()
            .harden_table(&table)
            .sample(0.8);
        // −17.91% × 0.29 ≈ −5.2%.
        assert!(
            (p.ah_threshold_scale - (1.0 - 0.1791 * 5.23 / 18.01)).abs() < 1e-6,
            "{p:?}"
        );
    }

    #[test]
    fn comparator_pins_ah_threshold() {
        let table = PowerTransferTable::paper_nominal();
        let p = Defense::ComparatorFirstStage
            .harden_table(&table)
            .sample(0.8);
        assert!((p.ah_threshold_scale - 1.0).abs() <= 0.0056 + 1e-9);
    }

    #[test]
    fn defenses_compose() {
        let table = PowerTransferTable::paper_nominal();
        let hardened =
            Defense::BandgapThreshold.harden_table(&Defense::RobustDriver.harden_table(&table));
        let p = hardened.sample(0.8);
        assert!((p.drive_scale - 1.0).abs() <= 0.006);
        assert!((p.if_threshold_scale - 1.0).abs() <= 0.006);
        // AH column still vulnerable (not defended by these two).
        assert!(p.ah_threshold_scale < 0.9);
    }

    #[test]
    fn paper_overheads() {
        assert_eq!(Defense::RobustDriver.paper_overhead().power_percent, 3.0);
        assert_eq!(
            Defense::BandgapThreshold.paper_overhead().area_percent,
            65.0
        );
        assert_eq!(
            Defense::sized_neuron_paper().paper_overhead().power_percent,
            25.0
        );
        assert_eq!(
            Defense::ComparatorFirstStage.paper_overhead().power_percent,
            11.0
        );
    }

    #[test]
    fn fully_defended_attack5_is_nearly_noop() {
        // With robust driver + bandgap threshold, the VDD=0.8 plan's
        // corruption shrinks to the bandgap residual.
        let table = PowerTransferTable::paper_nominal();
        let hardened =
            Defense::BandgapThreshold.harden_table(&Defense::RobustDriver.harden_table(&table));
        let plan = FaultPlan::from_vdd(0.8, &hardened);
        for t in &plan.thresholds {
            assert!(t.rel_change.abs() <= 0.006, "{t:?}");
        }
        assert!((plan.drive.unwrap().scale - 1.0).abs() <= 0.006);
    }
}
