//! Dummy-neuron voltage-fault-injection detection (§V-C, Figs. 10b/10c).
//!
//! A dummy neuron with a fixed input is placed in each layer; its output
//! spike count over a sampling window is compared against the enrolled
//! baseline. The paper flags an attack when the count deviates by ≥10%.
//! Only *local* VDD manipulation is detectable this way — a global
//! attacker also controls the detector's reference window, which the
//! paper notes as a limitation.

use crate::error::Error;

/// The spike-count deviation detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DummyNeuronDetector {
    /// Enrolled attack-free spike count for the sampling window.
    pub baseline_count: f64,
    /// Relative deviation that triggers a detection (0.10 in the paper).
    pub tolerance: f64,
}

impl DummyNeuronDetector {
    /// Creates a detector with the paper's 10% rule.
    ///
    /// # Panics
    /// Panics if `baseline_count` is not positive and finite.
    pub fn new(baseline_count: f64) -> DummyNeuronDetector {
        assert!(
            baseline_count.is_finite() && baseline_count > 0.0,
            "baseline spike count must be positive, got {baseline_count}"
        );
        DummyNeuronDetector {
            baseline_count,
            tolerance: 0.10,
        }
    }

    /// Adjusts the detection tolerance.
    ///
    /// # Panics
    /// Panics if `tolerance` is not positive.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> DummyNeuronDetector {
        assert!(tolerance > 0.0, "tolerance must be positive");
        self.tolerance = tolerance;
        self
    }

    /// Enrolls a detector from a dummy-neuron VDD characterisation series
    /// (`(vdd, count)` pairs): the baseline is the count at the nominal
    /// supply `vdd_nominal`.
    ///
    /// # Errors
    /// [`Error::Invalid`] when the series lacks the nominal point.
    pub fn from_characterisation(
        series: &[(f64, f64)],
        vdd_nominal: f64,
    ) -> Result<DummyNeuronDetector, Error> {
        let baseline = series
            .iter()
            .find(|(v, _)| (v - vdd_nominal).abs() < 1e-9)
            .map(|(_, c)| *c)
            .ok_or_else(|| {
                Error::Invalid(format!(
                    "characterisation series has no point at vdd={vdd_nominal}"
                ))
            })?;
        if !(baseline.is_finite() && baseline > 0.0) {
            return Err(Error::Invalid(format!(
                "baseline count at vdd={vdd_nominal} must be positive, got {baseline}"
            )));
        }
        Ok(DummyNeuronDetector::new(baseline))
    }

    /// Relative deviation of an observed count from the baseline.
    pub fn deviation(&self, observed_count: f64) -> f64 {
        (observed_count - self.baseline_count) / self.baseline_count
    }

    /// True when the observation triggers the ≥`tolerance` rule.
    pub fn is_attack(&self, observed_count: f64) -> bool {
        self.deviation(observed_count).abs() >= self.tolerance
    }
}

/// One row of a detection evaluation (Fig. 10c style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionRow {
    /// Supply voltage of the observation.
    pub vdd: f64,
    /// Observed dummy spike count.
    pub count: f64,
    /// Relative deviation from baseline, percent.
    pub deviation_percent: f64,
    /// Whether the detector flags this observation.
    pub flagged: bool,
}

/// Evaluates a detector against a `(vdd, count)` series.
pub fn evaluate_series(detector: &DummyNeuronDetector, series: &[(f64, f64)]) -> Vec<DetectionRow> {
    series
        .iter()
        .map(|&(vdd, count)| DetectionRow {
            vdd,
            count,
            deviation_percent: detector.deviation(count) * 100.0,
            flagged: detector.is_attack(count),
        })
        .collect()
}

/// Summary statistics of a detection evaluation: how many attacked points
/// (VDD ≠ nominal) were caught and whether the nominal point stayed
/// quiet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionSummary {
    /// Off-nominal points flagged (true positives).
    pub detected: usize,
    /// Off-nominal points missed (false negatives).
    pub missed: usize,
    /// Nominal points flagged (false positives).
    pub false_positives: usize,
}

/// Summarises detection over a series, treating points within `vdd_tol`
/// of `vdd_nominal` as attack-free.
pub fn summarize(rows: &[DetectionRow], vdd_nominal: f64, vdd_tol: f64) -> DetectionSummary {
    let mut summary = DetectionSummary {
        detected: 0,
        missed: 0,
        false_positives: 0,
    };
    for row in rows {
        let nominal = (row.vdd - vdd_nominal).abs() <= vdd_tol;
        match (nominal, row.flagged) {
            (false, true) => summary.detected += 1,
            (false, false) => summary.missed += 1,
            (true, true) => summary.false_positives += 1,
            (true, false) => {}
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_percent_rule() {
        let d = DummyNeuronDetector::new(1000.0);
        assert!(!d.is_attack(1000.0));
        assert!(!d.is_attack(1099.0));
        assert!(d.is_attack(1100.0));
        assert!(d.is_attack(899.0));
        assert!(!d.is_attack(901.0));
    }

    #[test]
    fn deviation_signs() {
        let d = DummyNeuronDetector::new(200.0);
        assert!((d.deviation(220.0) - 0.1).abs() < 1e-12);
        assert!((d.deviation(180.0) + 0.1).abs() < 1e-12);
    }

    #[test]
    fn enrollment_from_series() {
        let series = [(0.8, 1500.0), (1.0, 1000.0), (1.2, 700.0)];
        let d = DummyNeuronDetector::from_characterisation(&series, 1.0).unwrap();
        assert_eq!(d.baseline_count, 1000.0);
        let rows = evaluate_series(&d, &series);
        assert!(rows[0].flagged, "VDD=0.8 must be detected");
        assert!(!rows[1].flagged, "nominal must stay quiet");
        assert!(rows[2].flagged, "VDD=1.2 must be detected");
    }

    #[test]
    fn enrollment_requires_nominal_point() {
        let series = [(0.8, 1500.0), (1.2, 700.0)];
        assert!(DummyNeuronDetector::from_characterisation(&series, 1.0).is_err());
    }

    #[test]
    fn summary_counts() {
        let d = DummyNeuronDetector::new(1000.0);
        let rows = evaluate_series(
            &d,
            &[(0.8, 1400.0), (0.9, 1050.0), (1.0, 1000.0), (1.2, 600.0)],
        );
        let s = summarize(&rows, 1.0, 1e-6);
        assert_eq!(s.detected, 2); // 0.8 and 1.2
        assert_eq!(s.missed, 1); // 0.9 deviates only 5%
        assert_eq!(s.false_positives, 0);
    }

    #[test]
    fn custom_tolerance() {
        let d = DummyNeuronDetector::new(1000.0).with_tolerance(0.03);
        assert!(d.is_attack(1050.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_baseline() {
        DummyNeuronDetector::new(0.0);
    }
}
