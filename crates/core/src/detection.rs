//! Dummy-neuron voltage-fault-injection detection (§V-C, Figs. 10b/10c).
//!
//! A dummy neuron with a fixed input is placed in each layer; its output
//! spike count over a sampling window is compared against the enrolled
//! baseline. The paper flags an attack when the count deviates by ≥10%.
//! Only *local* VDD manipulation is detectable this way — a global
//! attacker also controls the detector's reference window, which the
//! paper notes as a limitation.

use neurofi_analog::PowerTransferTable;

use crate::error::Error;

/// The supply the detector's dummy neuron is enrolled at — the paper's
/// nominal 1.0 V. Cells attacked at exactly the nominal supply are not
/// attacks at all; [`summarize`] and the per-cell sweep reporting treat
/// them as quiet true negatives rather than misses.
pub const VDD_NOMINAL: f64 = 1.0;

/// Deterministic dummy-neuron spike-count response at the given supply,
/// as a scale factor relative to an arbitrary fixed-input rate: an
/// integrate-and-fire neuron's rate grows with its input drive and
/// shrinks with its firing threshold, so the count tracks
/// `drive_scale / if_threshold_scale` sampled from the *undefended*
/// transfer table (the detector's own dummy neuron sees the raw supply —
/// §V defenses harden the network, not the sensor).
pub fn dummy_count_scale(vdd: f64, transfer: &PowerTransferTable) -> f64 {
    let point = transfer.sample(vdd);
    point.drive_scale / point.if_threshold_scale
}

/// The spike-count deviation detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DummyNeuronDetector {
    /// Enrolled attack-free spike count for the sampling window.
    pub baseline_count: f64,
    /// Relative deviation that triggers a detection (0.10 in the paper).
    pub tolerance: f64,
}

impl DummyNeuronDetector {
    /// Creates a detector with the paper's 10% rule.
    ///
    /// # Errors
    /// [`Error::Invalid`] when `baseline_count` is not positive and
    /// finite — enrollment data arrives from characterisation runs and
    /// spec files, so a degenerate baseline must surface as a
    /// recoverable error, not a panic.
    pub fn new(baseline_count: f64) -> Result<DummyNeuronDetector, Error> {
        if !(baseline_count.is_finite() && baseline_count > 0.0) {
            return Err(Error::Invalid(format!(
                "baseline spike count must be positive, got {baseline_count}"
            )));
        }
        Ok(DummyNeuronDetector {
            baseline_count,
            tolerance: 0.10,
        })
    }

    /// Adjusts the detection tolerance.
    ///
    /// # Errors
    /// [`Error::Invalid`] when `tolerance` is not positive and finite.
    pub fn with_tolerance(mut self, tolerance: f64) -> Result<DummyNeuronDetector, Error> {
        if !(tolerance.is_finite() && tolerance > 0.0) {
            return Err(Error::Invalid(format!(
                "tolerance must be positive, got {tolerance}"
            )));
        }
        self.tolerance = tolerance;
        Ok(self)
    }

    /// Enrolls a detector from a dummy-neuron VDD characterisation series
    /// (`(vdd, count)` pairs): the baseline is the count at the nominal
    /// supply `vdd_nominal`.
    ///
    /// # Errors
    /// [`Error::Invalid`] when the series lacks the nominal point.
    pub fn from_characterisation(
        series: &[(f64, f64)],
        vdd_nominal: f64,
    ) -> Result<DummyNeuronDetector, Error> {
        let baseline = series
            .iter()
            .find(|(v, _)| (v - vdd_nominal).abs() < 1e-9)
            .map(|(_, c)| *c)
            .ok_or_else(|| {
                Error::Invalid(format!(
                    "characterisation series has no point at vdd={vdd_nominal}"
                ))
            })?;
        if !(baseline.is_finite() && baseline > 0.0) {
            return Err(Error::Invalid(format!(
                "baseline count at vdd={vdd_nominal} must be positive, got {baseline}"
            )));
        }
        DummyNeuronDetector::new(baseline)
    }

    /// Relative deviation of an observed count from the baseline.
    pub fn deviation(&self, observed_count: f64) -> f64 {
        (observed_count - self.baseline_count) / self.baseline_count
    }

    /// True when the observation triggers the ≥`tolerance` rule.
    pub fn is_attack(&self, observed_count: f64) -> bool {
        self.deviation(observed_count).abs() >= self.tolerance
    }
}

/// Per-cell outcome of an armed detector (sweep reporting; the
/// series-level counterpart is [`DetectionSummary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionOutcome {
    /// The deviation tripped the ≥`tolerance` rule — a hit.
    Detected,
    /// An off-nominal supply stayed under the rule — a miss (false
    /// negative).
    Missed,
    /// The nominal supply stayed under the rule — a true negative,
    /// counted as neither hit nor miss.
    Quiet,
}

impl DetectionOutcome {
    /// The report label (`hit` / `miss` / `quiet`).
    pub fn label(self) -> &'static str {
        match self {
            DetectionOutcome::Detected => "hit",
            DetectionOutcome::Missed => "miss",
            DetectionOutcome::Quiet => "quiet",
        }
    }
}

/// One row of a detection evaluation (Fig. 10c style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionRow {
    /// Supply voltage of the observation.
    pub vdd: f64,
    /// Observed dummy spike count.
    pub count: f64,
    /// Relative deviation from baseline, percent.
    pub deviation_percent: f64,
    /// Whether the detector flags this observation.
    pub flagged: bool,
}

/// Evaluates a detector against a `(vdd, count)` series.
pub fn evaluate_series(detector: &DummyNeuronDetector, series: &[(f64, f64)]) -> Vec<DetectionRow> {
    series
        .iter()
        .map(|&(vdd, count)| DetectionRow {
            vdd,
            count,
            deviation_percent: detector.deviation(count) * 100.0,
            flagged: detector.is_attack(count),
        })
        .collect()
}

/// Summary statistics of a detection evaluation: how many attacked points
/// (VDD ≠ nominal) were caught and whether the nominal point stayed
/// quiet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionSummary {
    /// Off-nominal points flagged (true positives).
    pub detected: usize,
    /// Off-nominal points missed (false negatives).
    pub missed: usize,
    /// Nominal points flagged (false positives).
    pub false_positives: usize,
}

/// Summarises detection over a series, treating points within `vdd_tol`
/// of `vdd_nominal` as attack-free.
pub fn summarize(rows: &[DetectionRow], vdd_nominal: f64, vdd_tol: f64) -> DetectionSummary {
    let mut summary = DetectionSummary {
        detected: 0,
        missed: 0,
        false_positives: 0,
    };
    for row in rows {
        let nominal = (row.vdd - vdd_nominal).abs() <= vdd_tol;
        match (nominal, row.flagged) {
            (false, true) => summary.detected += 1,
            (false, false) => summary.missed += 1,
            (true, true) => summary.false_positives += 1,
            (true, false) => {}
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_percent_rule() {
        let d = DummyNeuronDetector::new(1000.0).unwrap();
        assert!(!d.is_attack(1000.0));
        assert!(!d.is_attack(1099.0));
        assert!(d.is_attack(1100.0));
        assert!(d.is_attack(899.0));
        assert!(!d.is_attack(901.0));
    }

    #[test]
    fn deviation_signs() {
        let d = DummyNeuronDetector::new(200.0).unwrap();
        assert!((d.deviation(220.0) - 0.1).abs() < 1e-12);
        assert!((d.deviation(180.0) + 0.1).abs() < 1e-12);
    }

    #[test]
    fn enrollment_from_series() {
        let series = [(0.8, 1500.0), (1.0, 1000.0), (1.2, 700.0)];
        let d = DummyNeuronDetector::from_characterisation(&series, 1.0).unwrap();
        assert_eq!(d.baseline_count, 1000.0);
        let rows = evaluate_series(&d, &series);
        assert!(rows[0].flagged, "VDD=0.8 must be detected");
        assert!(!rows[1].flagged, "nominal must stay quiet");
        assert!(rows[2].flagged, "VDD=1.2 must be detected");
    }

    #[test]
    fn enrollment_requires_nominal_point() {
        let series = [(0.8, 1500.0), (1.2, 700.0)];
        assert!(DummyNeuronDetector::from_characterisation(&series, 1.0).is_err());
    }

    #[test]
    fn summary_counts() {
        let d = DummyNeuronDetector::new(1000.0).unwrap();
        let rows = evaluate_series(
            &d,
            &[(0.8, 1400.0), (0.9, 1050.0), (1.0, 1000.0), (1.2, 600.0)],
        );
        let s = summarize(&rows, 1.0, 1e-6);
        assert_eq!(s.detected, 2); // 0.8 and 1.2
        assert_eq!(s.missed, 1); // 0.9 deviates only 5%
        assert_eq!(s.false_positives, 0);
    }

    #[test]
    fn custom_tolerance() {
        let d = DummyNeuronDetector::new(1000.0)
            .unwrap()
            .with_tolerance(0.03)
            .unwrap();
        assert!(d.is_attack(1050.0));
    }

    #[test]
    fn rejects_bad_baselines_and_tolerances() {
        // Degenerate enrollment data is a recoverable error, never a
        // panic — the values arrive from characterisation runs.
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = DummyNeuronDetector::new(bad).unwrap_err().to_string();
            assert!(err.contains("positive"), "diagnostic names the rule: {err}");
        }
        let d = DummyNeuronDetector::new(1000.0).unwrap();
        for bad in [0.0, -0.1, f64::NAN] {
            assert!(d.with_tolerance(bad).is_err());
        }
    }

    #[test]
    fn count_scale_tracks_drive_over_threshold() {
        let table = PowerTransferTable::paper_nominal();
        let nominal = dummy_count_scale(VDD_NOMINAL, &table);
        let attacked = dummy_count_scale(0.8, &table);
        let point = table.sample(0.8);
        assert_eq!(attacked, point.drive_scale / point.if_threshold_scale);
        // Undervolting starves the dummy neuron: the count must drop
        // hard enough for the 10% rule to fire.
        assert!(
            (attacked / nominal - 1.0).abs() >= 0.10,
            "scale {attacked} vs {nominal}"
        );
    }
}
