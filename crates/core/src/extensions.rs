//! Extensions beyond the paper's five attacks.
//!
//! §IV-E of the paper explicitly lists attack surfaces it does *not*
//! study: "(b) fault injection into synaptic weights" and transient
//! rather than static supply manipulation. This module implements both as
//! clearly-flagged extensions so downstream users can explore the wider
//! threat landscape with the same experiment protocol.
//!
//! These results have **no paper reference values**; they extend the
//! study.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::attacks::{AttackOutcome, ExperimentSetup, RunMeasurement};
use crate::error::Error;
use crate::injection::FaultPlan;
use crate::threat::AttackKind;
use neurofi_analog::PowerTransferTable;
use neurofi_snn::diehl_cook::DiehlCook2015;
use neurofi_snn::trainer::{evaluate, train_with_hook};

/// How synaptic weights are corrupted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightFaultKind {
    /// Multiply every weight by a constant (supply-coupled synapse drive,
    /// e.g. memristor read-current scaling).
    Scale(f64),
    /// Set a random fraction of weights to zero (stuck-at-zero cells).
    StuckAtZero {
        /// Fraction of weights affected, in `[0, 1]`.
        fraction: f64,
        /// Selection seed.
        seed: u64,
    },
    /// Saturate a random fraction of weights to `w_max` (stuck-at-one).
    StuckAtMax {
        /// Fraction of weights affected, in `[0, 1]`.
        fraction: f64,
        /// Selection seed.
        seed: u64,
    },
}

/// Extension attack: corrupt the plastic input→excitatory weights *after*
/// training, modelling an inference-time fault in the synapse array.
///
/// Unlike Attacks 1–5 (which corrupt training), this evaluates a cleanly
/// trained network whose stored weights are then damaged — the scenario
/// of §IV-E(b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightFaultAttack {
    /// The corruption model.
    pub kind: WeightFaultKind,
}

impl WeightFaultAttack {
    /// Creates the attack.
    ///
    /// # Panics
    /// Panics if a fraction is outside `[0, 1]` or a scale is not
    /// positive/finite.
    pub fn new(kind: WeightFaultKind) -> WeightFaultAttack {
        match kind {
            WeightFaultKind::Scale(s) => {
                assert!(s.is_finite() && s > 0.0, "weight scale must be positive");
            }
            WeightFaultKind::StuckAtZero { fraction, .. }
            | WeightFaultKind::StuckAtMax { fraction, .. } => {
                assert!(
                    (0.0..=1.0).contains(&fraction),
                    "fraction must be within [0, 1]"
                );
            }
        }
        WeightFaultAttack { kind }
    }

    fn corrupt(&self, net: &mut DiehlCook2015) {
        let w_max = net.input_to_exc.w_max;
        let w = &mut net.input_to_exc.w;
        match self.kind {
            WeightFaultKind::Scale(s) => {
                for r in 0..w.rows() {
                    for v in w.row_mut(r) {
                        *v *= s as f32;
                    }
                }
            }
            WeightFaultKind::StuckAtZero { fraction, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                for r in 0..w.rows() {
                    for v in w.row_mut(r) {
                        if rng.gen::<f64>() < fraction {
                            *v = 0.0;
                        }
                    }
                }
            }
            WeightFaultKind::StuckAtMax { fraction, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                for r in 0..w.rows() {
                    for v in w.row_mut(r) {
                        if rng.gen::<f64>() < fraction {
                            *v = w_max;
                        }
                    }
                }
            }
        }
        // Scaled weights can land outside [w_min, w_max]; tell the
        // connection so any further STDP restores bounds with a full clamp.
        net.input_to_exc.mark_weights_dirty();
    }

    /// Trains cleanly, corrupts the stored weights, then evaluates.
    ///
    /// # Errors
    /// Reserved; currently always succeeds.
    pub fn run(&self, setup: &ExperimentSetup) -> Result<AttackOutcome, Error> {
        let (train_data, test_data) = setup.datasets();
        let mut net = DiehlCook2015::new(setup.network.clone(), setup.network_seed);
        let report = train_with_hook(&mut net, &train_data, &setup.train_options, |_, _| {});
        let n_classes = setup.train_options.n_classes;
        let clean_accuracy = evaluate(&mut net, &report.assignments, &test_data, n_classes);

        self.corrupt(&mut net);
        let attacked_accuracy = evaluate(&mut net, &report.assignments, &test_data, n_classes);
        let baseline = RunMeasurement {
            accuracy: clean_accuracy,
            mean_activity: report.mean_activity,
            silent_fraction: report.silent_fraction,
        };
        Ok(AttackOutcome {
            kind: AttackKind::InputSpikeCorruption, // nearest taxonomy entry
            baseline_accuracy: clean_accuracy,
            attacked_accuracy,
            baseline,
            attacked: RunMeasurement {
                accuracy: attacked_accuracy,
                ..baseline
            },
            plan: FaultPlan::none(),
        })
    }
}

/// Extension attack: a *transient* supply glitch — the VDD fault is
/// active only for a window of training samples, then the supply
/// recovers. Models a momentary glitch rig rather than a persistent
/// brown-out.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientGlitchAttack {
    /// Glitched supply voltage.
    pub vdd: f64,
    /// First training-sample index with the glitch active.
    pub from_sample: usize,
    /// First training-sample index after recovery.
    pub to_sample: usize,
    /// VDD → parameter transfer table.
    pub transfer: PowerTransferTable,
}

impl TransientGlitchAttack {
    /// Creates a glitch active during `[from_sample, to_sample)`.
    ///
    /// # Panics
    /// Panics if the window is empty or `vdd` is not positive.
    pub fn new(vdd: f64, from_sample: usize, to_sample: usize) -> TransientGlitchAttack {
        assert!(vdd.is_finite() && vdd > 0.0, "vdd must be positive");
        assert!(from_sample < to_sample, "glitch window must be non-empty");
        TransientGlitchAttack {
            vdd,
            from_sample,
            to_sample,
            transfer: PowerTransferTable::paper_nominal(),
        }
    }

    /// Trains with the glitch applied only inside the window, then
    /// evaluates at nominal supply.
    ///
    /// # Errors
    /// Reserved; currently always succeeds.
    pub fn run(&self, setup: &ExperimentSetup) -> Result<AttackOutcome, Error> {
        let baseline = setup.baseline();
        let (train_data, test_data) = setup.datasets();
        let mut net = DiehlCook2015::new(setup.network.clone(), setup.network_seed);
        let plan = FaultPlan::from_vdd(self.vdd, &self.transfer);
        let (from, to) = (self.from_sample, self.to_sample);
        let report = train_with_hook(&mut net, &train_data, &setup.train_options, |i, net| {
            if i == from {
                plan.apply(net);
            } else if i == to {
                net.clear_faults();
            }
        });
        // Ensure recovery if the window extends past the dataset.
        net.clear_faults();
        let n_classes = setup.train_options.n_classes;
        let attacked_accuracy = evaluate(&mut net, &report.assignments, &test_data, n_classes);
        Ok(AttackOutcome {
            kind: AttackKind::GlobalVdd,
            baseline_accuracy: baseline.accuracy,
            attacked_accuracy,
            baseline,
            attacked: RunMeasurement {
                accuracy: attacked_accuracy,
                mean_activity: report.mean_activity,
                silent_fraction: report.silent_fraction,
            },
            plan,
        })
    }

    /// Fraction of training samples under the glitch for a dataset of
    /// `n_train` samples.
    pub fn duty(&self, n_train: usize) -> f64 {
        if n_train == 0 {
            return 0.0;
        }
        let span = self
            .to_sample
            .min(n_train)
            .saturating_sub(self.from_sample.min(n_train));
        span as f64 / n_train as f64
    }
}

/// Compares a persistent Attack 5 against transient glitches of varying
/// duty at the same VDD — the natural question a glitch-rig adversary
/// asks ("how long must the glitch last?").
///
/// Returns `(duty, accuracy)` rows including duty 1.0 (persistent).
///
/// # Errors
/// Propagates experiment failures.
pub fn glitch_duty_sweep(
    setup: &ExperimentSetup,
    vdd: f64,
    duties: &[f64],
) -> Result<Vec<(f64, f64)>, Error> {
    let mut rows = Vec::new();
    for &duty in duties {
        assert!((0.0..=1.0).contains(&duty), "duty must be within [0, 1]");
        let to = ((setup.n_train as f64) * duty).round() as usize;
        let accuracy = if to == 0 {
            setup.baseline().accuracy
        } else {
            let attack = TransientGlitchAttack::new(vdd, 0, to);
            attack.run(setup)?.attacked_accuracy
        };
        rows.push((duty, accuracy));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_setup() -> ExperimentSetup {
        let mut setup = ExperimentSetup::quick(9);
        setup.n_train = 100;
        setup.n_test = 50;
        setup.network.sample_time_ms = 80.0;
        setup.train_options.assignment_window = None;
        setup
    }

    #[test]
    fn weight_scale_one_is_noop() {
        let setup = tiny_setup();
        let outcome = WeightFaultAttack::new(WeightFaultKind::Scale(1.0))
            .run(&setup)
            .unwrap();
        assert_eq!(outcome.baseline_accuracy, outcome.attacked_accuracy);
    }

    #[test]
    fn stuck_at_zero_everything_destroys_classification() {
        let setup = tiny_setup();
        let outcome = WeightFaultAttack::new(WeightFaultKind::StuckAtZero {
            fraction: 1.0,
            seed: 1,
        })
        .run(&setup)
        .unwrap();
        assert!(
            outcome.attacked_accuracy <= 0.2,
            "zeroed weights must collapse accuracy, got {:.2}",
            outcome.attacked_accuracy
        );
    }

    #[test]
    fn small_weight_faults_are_mild() {
        let setup = tiny_setup();
        let outcome = WeightFaultAttack::new(WeightFaultKind::StuckAtZero {
            fraction: 0.05,
            seed: 1,
        })
        .run(&setup)
        .unwrap();
        assert!(
            outcome.attacked_accuracy > 0.5 * outcome.baseline_accuracy,
            "5% stuck-at-zero should be tolerable: {:.2} vs {:.2}",
            outcome.attacked_accuracy,
            outcome.baseline_accuracy
        );
    }

    #[test]
    fn glitch_duty_zero_is_baseline() {
        let setup = tiny_setup();
        let rows = glitch_duty_sweep(&setup, 0.8, &[0.0]).unwrap();
        let baseline = setup.baseline().accuracy;
        assert_eq!(rows[0].1, baseline);
    }

    #[test]
    fn glitch_window_bookkeeping() {
        let g = TransientGlitchAttack::new(0.8, 10, 60);
        assert!((g.duty(100) - 0.5).abs() < 1e-12);
        assert!((g.duty(50) - 0.8).abs() < 1e-12);
        assert_eq!(g.duty(0), 0.0);
    }

    #[test]
    fn transient_glitch_runs_and_recovers_faults() {
        let setup = tiny_setup();
        let outcome = TransientGlitchAttack::new(0.8, 0, 30).run(&setup).unwrap();
        // Accuracy may or may not recover, but the run must complete and
        // report sane numbers.
        assert!((0.0..=1.0).contains(&outcome.attacked_accuracy));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_window() {
        TransientGlitchAttack::new(0.8, 5, 5);
    }
}
