//! Runnable implementations of the paper's five attacks.
//!
//! Every attack follows the paper's experimental protocol (§IV-A): build
//! the Diehl&Cook network, *train it under the fault* (power attacks
//! corrupt training, not just inference), derive neuron-class assignments,
//! and measure classification accuracy on a held-out set. Outcomes pair
//! the attacked accuracy with a fault-free baseline trained identically.

use neurofi_analog::PowerTransferTable;
use neurofi_data::{LabeledImages, SynthDigits};
use neurofi_snn::diehl_cook::{DiehlCook2015, DiehlCookConfig};
use neurofi_snn::trainer::{evaluate, train, TrainOptions};

use crate::error::Error;
use crate::injection::{FaultPlan, TargetLayer};
use crate::sweep::Parallelism;
use crate::threat::AttackKind;

/// A complete experiment description: network configuration, dataset
/// sizes and seeds.
#[derive(Debug, Clone)]
pub struct ExperimentSetup {
    /// Network configuration (the paper's Diehl&Cook settings).
    pub network: DiehlCookConfig,
    /// Number of training images (1000 in the paper).
    pub n_train: usize,
    /// Number of held-out evaluation images.
    pub n_test: usize,
    /// Seed for dataset generation.
    pub data_seed: u64,
    /// Seed for network initialisation and encoding.
    pub network_seed: u64,
    /// Training/assignment options.
    pub train_options: TrainOptions,
    /// Synthetic digit generator configuration.
    pub generator: SynthDigits,
    /// Worker-thread budget for the sweep engine (serial and parallel
    /// sweeps are bit-identical; see [`crate::sweep`]).
    pub parallelism: Parallelism,
}

impl ExperimentSetup {
    /// The paper's full protocol: 1000 training images, 250 ms per
    /// sample, 100+100 neurons. Evaluation uses 250 held-out images.
    pub fn paper(seed: u64) -> ExperimentSetup {
        ExperimentSetup {
            network: DiehlCookConfig::default(),
            n_train: 1000,
            n_test: 250,
            data_seed: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
            network_seed: seed,
            train_options: TrainOptions::default(),
            generator: SynthDigits::default(),
            parallelism: Parallelism::Auto,
        }
    }

    /// A reduced protocol (~6× faster) for tests and smoke runs: fewer
    /// images, shorter exposure. Accuracy levels drop but the attack
    /// orderings survive.
    pub fn quick(seed: u64) -> ExperimentSetup {
        let mut setup = ExperimentSetup::paper(seed);
        setup.network.sample_time_ms = 150.0;
        setup.n_train = 400;
        setup.n_test = 150;
        setup.train_options.assignment_window = Some(200);
        setup
    }

    /// Returns a copy with the given sweep-engine parallelism.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> ExperimentSetup {
        self.parallelism = parallelism;
        self
    }

    /// Returns a copy re-seeded for repeat measurements.
    #[must_use]
    pub fn with_seed(&self, seed: u64) -> ExperimentSetup {
        let mut setup = self.clone();
        setup.network_seed = seed;
        setup.data_seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        setup
    }

    /// Generates the train/test datasets for this setup.
    pub fn datasets(&self) -> (LabeledImages, LabeledImages) {
        let all = self
            .generator
            .generate(self.n_train + self.n_test, self.data_seed);
        all.split(self.n_train)
    }

    /// Trains a fresh network under the given fault plan and evaluates it.
    /// This is the paper's protocol: faults are active during both
    /// training and evaluation.
    pub fn run_with_plan(&self, plan: &FaultPlan) -> RunMeasurement {
        let (train_data, test_data) = self.datasets();
        let mut net = DiehlCook2015::new(self.network.clone(), self.network_seed);
        plan.apply(&mut net);
        let report = train(&mut net, &train_data, &self.train_options);
        let accuracy = evaluate(
            &mut net,
            &report.assignments,
            &test_data,
            self.train_options.n_classes,
        );
        RunMeasurement {
            accuracy,
            mean_activity: report.mean_activity,
            silent_fraction: report.silent_fraction,
        }
    }

    /// Fault-free reference run.
    pub fn baseline(&self) -> RunMeasurement {
        self.run_with_plan(&FaultPlan::none())
    }
}

/// Accuracy and activity-health numbers from one training+evaluation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMeasurement {
    /// Held-out classification accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Mean excitatory spikes per training presentation.
    pub mean_activity: f64,
    /// Fraction of training presentations with zero excitatory spikes.
    pub silent_fraction: f64,
}

/// The result of one attack experiment.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Which of the five attacks ran.
    pub kind: AttackKind,
    /// Fault-free accuracy.
    pub baseline_accuracy: f64,
    /// Accuracy under attack.
    pub attacked_accuracy: f64,
    /// Baseline activity metrics.
    pub baseline: RunMeasurement,
    /// Attacked activity metrics.
    pub attacked: RunMeasurement,
    /// The fault plan that was applied.
    pub plan: FaultPlan,
}

impl AttackOutcome {
    /// Relative accuracy change in percent, the paper's headline metric
    /// (−85.65 means the accuracy dropped by 85.65% of its baseline).
    pub fn relative_change_percent(&self) -> f64 {
        if self.baseline_accuracy == 0.0 {
            return 0.0;
        }
        (self.attacked_accuracy - self.baseline_accuracy) / self.baseline_accuracy * 100.0
    }

    /// Absolute accuracy change in percentage points.
    pub fn absolute_change_points(&self) -> f64 {
        (self.attacked_accuracy - self.baseline_accuracy) * 100.0
    }
}

/// Common interface of the five attacks.
pub trait Attack {
    /// Which paper attack this is.
    fn kind(&self) -> AttackKind;

    /// The fault plan this attack injects.
    fn fault_plan(&self) -> FaultPlan;

    /// Runs baseline and attacked experiments.
    ///
    /// # Errors
    /// Reserved for configurations that require circuit characterisation;
    /// the built-in attacks currently always succeed.
    fn run(&self, setup: &ExperimentSetup) -> Result<AttackOutcome, Error> {
        let baseline = setup.baseline();
        self.run_with_baseline(setup, baseline)
    }

    /// Runs only the attacked experiment, reusing a precomputed baseline
    /// (the sweep engine calls this to amortise the baseline).
    ///
    /// # Errors
    /// See [`Attack::run`].
    fn run_with_baseline(
        &self,
        setup: &ExperimentSetup,
        baseline: RunMeasurement,
    ) -> Result<AttackOutcome, Error> {
        let plan = self.fault_plan();
        let attacked = setup.run_with_plan(&plan);
        Ok(AttackOutcome {
            kind: self.kind(),
            baseline_accuracy: baseline.accuracy,
            attacked_accuracy: attacked.accuracy,
            baseline,
            attacked,
            plan,
        })
    }
}

/// Attack 1: input-spike (driver) corruption — the `theta` sweep of
/// Fig. 7b.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputCorruptionAttack {
    /// Relative change of the membrane voltage per input spike
    /// (−0.20 for the paper's worst case).
    pub theta_change: f64,
}

impl InputCorruptionAttack {
    /// Creates the attack with the given relative theta change.
    ///
    /// # Panics
    /// Panics if the implied drive scale is not positive.
    pub fn new(theta_change: f64) -> InputCorruptionAttack {
        assert!(
            theta_change > -1.0 && theta_change.is_finite(),
            "theta change must be greater than -1, got {theta_change}"
        );
        InputCorruptionAttack { theta_change }
    }
}

impl Attack for InputCorruptionAttack {
    fn kind(&self) -> AttackKind {
        AttackKind::InputSpikeCorruption
    }

    fn fault_plan(&self) -> FaultPlan {
        FaultPlan::drive_only(1.0 + self.theta_change)
    }
}

/// Attacks 2–4: membrane-threshold manipulation of the excitatory layer,
/// the inhibitory layer, or both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdAttack {
    /// Target layer; `None` attacks both layers at 100% (Attack 4).
    pub layer: Option<TargetLayer>,
    /// Relative threshold change.
    pub rel_change: f64,
    /// Fraction of the layer affected (ignored for Attack 4, which is
    /// defined at 100%).
    pub fraction: f64,
}

impl ThresholdAttack {
    /// Attack 2: excitatory layer only.
    pub fn excitatory(rel_change: f64, fraction: f64) -> ThresholdAttack {
        ThresholdAttack {
            layer: Some(TargetLayer::Excitatory),
            rel_change,
            fraction,
        }
    }

    /// Attack 3: inhibitory layer only.
    pub fn inhibitory(rel_change: f64, fraction: f64) -> ThresholdAttack {
        ThresholdAttack {
            layer: Some(TargetLayer::Inhibitory),
            rel_change,
            fraction,
        }
    }

    /// Attack 4: both layers at 100%.
    pub fn both(rel_change: f64) -> ThresholdAttack {
        ThresholdAttack {
            layer: None,
            rel_change,
            fraction: 1.0,
        }
    }
}

impl Attack for ThresholdAttack {
    fn kind(&self) -> AttackKind {
        match self.layer {
            Some(TargetLayer::Excitatory) => AttackKind::ExcitatoryThreshold,
            Some(TargetLayer::Inhibitory) => AttackKind::InhibitoryThreshold,
            None => AttackKind::BothLayerThreshold,
        }
    }

    fn fault_plan(&self) -> FaultPlan {
        match self.layer {
            Some(layer) => FaultPlan::layer_threshold(layer, self.rel_change, self.fraction),
            None => FaultPlan::both_layer_threshold(self.rel_change),
        }
    }
}

/// Attack 5: black-box global VDD manipulation — corrupts drive *and*
/// both layer thresholds through the circuit transfer table (Fig. 9a).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalVddAttack {
    /// The manipulated supply voltage.
    pub vdd: f64,
    /// VDD → parameter transfer table (paper-nominal by default).
    pub transfer: PowerTransferTable,
}

impl GlobalVddAttack {
    /// Creates the attack with the paper's nominal transfer table.
    ///
    /// # Panics
    /// Panics if `vdd` is not positive and finite.
    pub fn new(vdd: f64) -> GlobalVddAttack {
        assert!(
            vdd.is_finite() && vdd > 0.0,
            "vdd must be positive, got {vdd}"
        );
        GlobalVddAttack {
            vdd,
            transfer: PowerTransferTable::paper_nominal(),
        }
    }

    /// Uses a custom (e.g. circuit-measured) transfer table.
    #[must_use]
    pub fn with_transfer(mut self, transfer: PowerTransferTable) -> GlobalVddAttack {
        self.transfer = transfer;
        self
    }
}

impl Attack for GlobalVddAttack {
    fn kind(&self) -> AttackKind {
        AttackKind::GlobalVdd
    }

    fn fault_plan(&self) -> FaultPlan {
        FaultPlan::from_vdd(self.vdd, &self.transfer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_setup(seed: u64) -> ExperimentSetup {
        // Deliberately small: these tests check plumbing and ordering, not
        // paper-scale numbers (integration tests cover those).
        let mut setup = ExperimentSetup::quick(seed);
        setup.n_train = 120;
        setup.n_test = 60;
        setup.network.sample_time_ms = 100.0;
        setup.train_options.assignment_window = None;
        setup
    }

    #[test]
    fn attack_kinds_and_plans_are_consistent() {
        assert_eq!(
            InputCorruptionAttack::new(-0.2).kind(),
            AttackKind::InputSpikeCorruption
        );
        assert_eq!(
            ThresholdAttack::excitatory(-0.2, 1.0).kind(),
            AttackKind::ExcitatoryThreshold
        );
        assert_eq!(
            ThresholdAttack::inhibitory(-0.2, 0.5).kind(),
            AttackKind::InhibitoryThreshold
        );
        assert_eq!(
            ThresholdAttack::both(-0.2).kind(),
            AttackKind::BothLayerThreshold
        );
        assert_eq!(GlobalVddAttack::new(0.8).kind(), AttackKind::GlobalVdd);

        let plan = ThresholdAttack::both(-0.2).fault_plan();
        assert_eq!(plan.thresholds.len(), 2);
        let plan = GlobalVddAttack::new(0.8).fault_plan();
        assert!(plan.drive.is_some());
    }

    #[test]
    fn zero_faults_reproduce_baseline() {
        let setup = tiny_setup(3);
        let baseline = setup.baseline();
        let outcome = InputCorruptionAttack::new(0.0)
            .run_with_baseline(&setup, baseline)
            .unwrap();
        assert_eq!(outcome.baseline_accuracy, outcome.attacked_accuracy);
        assert!(outcome.relative_change_percent().abs() < 1e-12);
    }

    #[test]
    fn inhibitory_collapse_dominates_excitatory() {
        // The paper's core finding, at reduced scale: the IL attack hurts
        // far more than the EL attack. Uses a slightly larger run than the
        // other plumbing tests so the ordering is stable.
        let mut setup = tiny_setup(7);
        setup.n_train = 250;
        setup.n_test = 100;
        let baseline = setup.baseline();
        assert!(
            baseline.accuracy > 0.15,
            "baseline {:.2}",
            baseline.accuracy
        );
        let il = ThresholdAttack::inhibitory(-0.20, 1.0)
            .run_with_baseline(&setup, baseline)
            .unwrap();
        let el = ThresholdAttack::excitatory(-0.20, 1.0)
            .run_with_baseline(&setup, baseline)
            .unwrap();
        assert!(
            il.attacked_accuracy < el.attacked_accuracy,
            "IL {:.2} must be below EL {:.2}",
            il.attacked_accuracy,
            el.attacked_accuracy
        );
        assert!(
            il.attacked_accuracy < 0.30,
            "IL attack should approach chance, got {:.2}",
            il.attacked_accuracy
        );
    }

    #[test]
    fn setup_reseeding_changes_data_and_network() {
        let a = tiny_setup(1);
        let b = a.with_seed(2);
        assert_ne!(a.network_seed, b.network_seed);
        assert_ne!(a.data_seed, b.data_seed);
        let (ta, _) = a.datasets();
        let (tb, _) = b.datasets();
        assert_ne!(ta, tb);
    }

    #[test]
    fn datasets_have_requested_sizes() {
        let setup = tiny_setup(5);
        let (train_data, test_data) = setup.datasets();
        assert_eq!(train_data.len(), setup.n_train);
        assert_eq!(test_data.len(), setup.n_test);
    }

    #[test]
    fn outcome_metrics() {
        let outcome = AttackOutcome {
            kind: AttackKind::GlobalVdd,
            baseline_accuracy: 0.80,
            attacked_accuracy: 0.12,
            baseline: RunMeasurement {
                accuracy: 0.80,
                mean_activity: 100.0,
                silent_fraction: 0.0,
            },
            attacked: RunMeasurement {
                accuracy: 0.12,
                mean_activity: 10.0,
                silent_fraction: 0.5,
            },
            plan: FaultPlan::none(),
        };
        assert!((outcome.relative_change_percent() + 85.0).abs() < 1e-9);
        assert!((outcome.absolute_change_points() + 68.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "greater than -1")]
    fn rejects_impossible_theta() {
        InputCorruptionAttack::new(-1.5);
    }
}
