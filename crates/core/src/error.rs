//! Error type for attack and defense experiments.

use std::fmt;

/// Any error produced by `neurofi-core`.
#[derive(Debug)]
pub enum Error {
    /// A circuit-level characterisation failed (propagated from the
    /// analog/spice layers while building transfer tables or overheads).
    Circuit(neurofi_spice_error::Error),
    /// An experiment was requested with invalid parameters.
    Invalid(String),
}

// `neurofi-analog` re-exports the spice error as its own; alias the path
// so the dependency surface stays a single crate.
use neurofi_analog as neurofi_spice_error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Circuit(e) => write!(f, "circuit characterisation failed: {e}"),
            Error::Invalid(msg) => write!(f, "invalid experiment: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Circuit(e) => Some(e),
            Error::Invalid(_) => None,
        }
    }
}

impl From<neurofi_spice_error::Error> for Error {
    fn from(e: neurofi_spice_error::Error) -> Error {
        Error::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = Error::Invalid("fraction must be within [0, 1]".into());
        assert!(e.to_string().contains("fraction"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + 'static>() {}
        check::<Error>();
    }

    #[test]
    fn circuit_errors_convert() {
        let inner = neurofi_analog::Error::InvalidAnalysis("x".into());
        let e: Error = inner.into();
        assert!(matches!(e, Error::Circuit(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
