//! Declarative N-axis scenario specifications — the single front door
//! to the sweep engine.
//!
//! The paper's surfaces (Figs. 7b, 8a–c, 9a) are all instances of one
//! shape: an attack family crossed with a parameter grid and seeds.
//! Instead of one hardcoded planner per figure, a [`ScenarioSpec`] is an
//! ordered list of typed [`Axis`] values plus an [`AttackFamily`]; one
//! generic planner ([`ScenarioSpec::plan`]) flattens the cross product
//! into the existing [`SweepPlan`]/[`CellJob`] pipeline in row-major
//! order (first axis slowest). Cross products the paper never ran —
//! e.g. a threshold grid × a VDD axis — need no engine changes: every
//! cell resolves to one composite [`CellAttack`] whose
//! [`FaultPlan`](crate::injection::FaultPlan) stacks the components.
//!
//! ## Axes
//!
//! | axis | values | meaning |
//! |---|---|---|
//! | `rel_change` | reals in (−1, 1) | threshold change (threshold families) |
//! | `fraction` | reals in \[0, 1\] | affected layer fraction (threshold families) |
//! | `theta_change` | reals > −1 | input-drive ("theta") change |
//! | `vdd` | positive reals | global supply voltage (needs a transfer table) |
//! | `layer` | `excitatory`, `inhibitory`, `both` | threshold target layer |
//! | `polarity` | non-zero reals (± 1) | multiplier on the family's primary change |
//! | `seed` | integers | per-cell seed (replaces the averaged seed list) |
//! | `defense` | `none`, `robust_driver`, `bandgap_threshold`, `sized_neuron`, `comparator` | §V hardening applied to the cell's transfer table |
//! | `detector` | `none`, `dummy_neuron` | §V-C dummy-neuron VFI detector armed for the cell |
//!
//! ## Grammar
//!
//! Each axis has a textual form, `NAME=VALUES`, where `VALUES` is a
//! comma list (`-0.2,0.2`), a linear range (`0.8..1.2/5` — five points,
//! endpoints included), or for `seed` an inclusive integer range
//! (`1..8`). Real values accept a `%` suffix (`-20%` is −0.20). A whole
//! scenario round-trips through a line-based text form ([`std::fmt::Display`] /
//! [`std::str::FromStr`]):
//!
//! ```text
//! attack = threshold-inhibitory
//! axis rel_change = -0.2, 0.2
//! axis vdd = 0.9, 1
//! seeds = 42
//! transfer = paper
//! ```
//!
//! The same spec crosses the wire whole (`neurofi-dist` protocol v4),
//! so `repro submit` can enqueue arbitrary grids on a running
//! coordinator, and the preset catalog is nothing but named specs.

use std::fmt;
use std::str::FromStr;

use neurofi_analog::{PowerTransferTable, TransferPoint};

use crate::defense::Defense;
use crate::error::Error;
use crate::injection::TargetLayer;
use crate::sweep::{CellAttack, CellJob, SweepConfig, SweepPlan};
use crate::threat::AttackKind;

/// Hard cap on axes per scenario (the attack space has ten axis
/// kinds; duplicates are rejected anyway).
pub const MAX_AXES: usize = 10;
/// Hard cap on the neuron count of one layer-netlist cell: a 4096-neuron
/// layer is already a ≈20 000-unknown circuit per cell.
pub const MAX_LAYER_NEURONS: u64 = 4_096;
/// Hard cap on values per axis — mirrors the wire layer's
/// hostile-length guards so a parsed spec can always be encoded.
pub const MAX_AXIS_VALUES: usize = 65_536;
/// Hard cap on the averaged seed list.
pub const MAX_SEEDS: usize = 4_096;
/// Hard cap on enumerated cells per scenario (the product of the axis
/// lengths).
pub const MAX_CELLS: usize = 1 << 22;
/// Hard cap on a textual spec fed to the parser.
pub const MAX_SPEC_TEXT: usize = 1 << 20;
/// Longest recognisable axis/key token; longer names are rejected
/// before any lookup (hostile-input guard).
pub const MAX_NAME_LEN: usize = 64;

/// The typed axes a scenario may sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxisKind {
    /// Relative threshold change (threshold families' primary axis).
    RelChange,
    /// Affected layer fraction (threshold families only).
    Fraction,
    /// Relative input-drive change (the theta family's primary axis;
    /// composes a drive fault on other families).
    ThetaChange,
    /// Global supply voltage (the vdd family's primary axis; composes
    /// the transfer-table fault on other families).
    Vdd,
    /// Threshold target layer (threshold families only).
    Layer,
    /// Multiplier on the family's primary change (typically ±1).
    Polarity,
    /// Per-cell seed; replaces the scenario's averaged seed list.
    Seed,
    /// §V hardening applied to the cell's transfer table before the
    /// VDD fault is sampled (needs a `vdd` axis to defend against).
    Defense,
    /// §V-C detector armed for the cell; detection hit/miss is derived
    /// from the resolved attack, never from the measured accuracy.
    Detector,
    /// Number of neuron instances in the whole-layer netlist workload:
    /// cells with this axis simulate the actual analog layer (shared
    /// supply rail, per-neuron parasitics) at the cell's VDD instead of
    /// the network-level accuracy model (vdd family only).
    Neurons,
}

impl AxisKind {
    /// Every axis kind, in canonical order.
    pub const ALL: [AxisKind; 10] = [
        AxisKind::RelChange,
        AxisKind::Fraction,
        AxisKind::ThetaChange,
        AxisKind::Vdd,
        AxisKind::Layer,
        AxisKind::Polarity,
        AxisKind::Seed,
        AxisKind::Defense,
        AxisKind::Detector,
        AxisKind::Neurons,
    ];

    /// The grammar name of the axis.
    pub fn name(self) -> &'static str {
        match self {
            AxisKind::RelChange => "rel_change",
            AxisKind::Fraction => "fraction",
            AxisKind::ThetaChange => "theta_change",
            AxisKind::Vdd => "vdd",
            AxisKind::Layer => "layer",
            AxisKind::Polarity => "polarity",
            AxisKind::Seed => "seed",
            AxisKind::Defense => "defense",
            AxisKind::Detector => "detector",
            AxisKind::Neurons => "neurons",
        }
    }

    /// Parses a grammar name. Overlong tokens are rejected before any
    /// comparison.
    pub fn parse(name: &str) -> Result<AxisKind, Error> {
        if name.len() > MAX_NAME_LEN {
            return Err(Error::Invalid(format!(
                "axis name of {} bytes exceeds the {MAX_NAME_LEN}-byte cap",
                name.len()
            )));
        }
        AxisKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| {
                Error::Invalid(format!(
                    "unknown axis `{name}` (axes: {})",
                    AxisKind::ALL.map(AxisKind::name).join(" ")
                ))
            })
    }
}

impl fmt::Display for AxisKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which layer(s) a threshold component targets. Unlike
/// [`TargetLayer`], this includes the both-layer case (Attack 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerSel {
    /// The excitatory layer only (Attack 2).
    Excitatory,
    /// The inhibitory layer only (Attack 3).
    Inhibitory,
    /// Both layers (Attack 4).
    Both,
}

impl LayerSel {
    /// The grammar name.
    pub fn name(self) -> &'static str {
        match self {
            LayerSel::Excitatory => "excitatory",
            LayerSel::Inhibitory => "inhibitory",
            LayerSel::Both => "both",
        }
    }

    /// Parses a grammar name (`el`/`il` shorthands accepted).
    pub fn parse(name: &str) -> Result<LayerSel, Error> {
        match name {
            "excitatory" | "el" => Ok(LayerSel::Excitatory),
            "inhibitory" | "il" => Ok(LayerSel::Inhibitory),
            "both" => Ok(LayerSel::Both),
            other => Err(Error::Invalid(format!(
                "unknown layer `{}` (layers: excitatory inhibitory both)",
                truncate_token(other)
            ))),
        }
    }

    /// The single-layer target, `None` for the both-layer case.
    pub fn target(self) -> Option<TargetLayer> {
        match self {
            LayerSel::Excitatory => Some(TargetLayer::Excitatory),
            LayerSel::Inhibitory => Some(TargetLayer::Inhibitory),
            LayerSel::Both => None,
        }
    }

    /// The selection for a single-layer target (`None` means both).
    pub fn from_target(layer: Option<TargetLayer>) -> LayerSel {
        match layer {
            Some(TargetLayer::Excitatory) => LayerSel::Excitatory,
            Some(TargetLayer::Inhibitory) => LayerSel::Inhibitory,
            None => LayerSel::Both,
        }
    }
}

impl fmt::Display for LayerSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which §V hardening a cell's transfer table is run through —
/// `None` is the undefended circuit, everything else maps onto a
/// [`Defense`] variant (with `sized_neuron` fixed at the paper's
/// measured residual factor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefenseSel {
    /// No hardening — the undefended circuit (the legacy default).
    None,
    /// §V-A robust current driver (pins the drive scale).
    RobustDriver,
    /// §V-A bandgap threshold reference (pins the IF threshold).
    BandgapThreshold,
    /// §V-B first-stage transistor sizing at the paper's residual
    /// factor.
    SizedNeuron,
    /// §V-B comparator-based first stage (pins the AH threshold).
    Comparator,
}

impl DefenseSel {
    /// The grammar name.
    pub fn name(self) -> &'static str {
        match self {
            DefenseSel::None => "none",
            DefenseSel::RobustDriver => "robust_driver",
            DefenseSel::BandgapThreshold => "bandgap_threshold",
            DefenseSel::SizedNeuron => "sized_neuron",
            DefenseSel::Comparator => "comparator",
        }
    }

    /// Parses a grammar name.
    pub fn parse(name: &str) -> Result<DefenseSel, Error> {
        match name {
            "none" => Ok(DefenseSel::None),
            "robust_driver" => Ok(DefenseSel::RobustDriver),
            "bandgap_threshold" => Ok(DefenseSel::BandgapThreshold),
            "sized_neuron" => Ok(DefenseSel::SizedNeuron),
            "comparator" => Ok(DefenseSel::Comparator),
            other => Err(Error::Invalid(format!(
                "unknown defense `{}` (defenses: none robust_driver \
                 bandgap_threshold sized_neuron comparator)",
                truncate_token(other)
            ))),
        }
    }

    /// The concrete §V hardening, `None` for the undefended circuit.
    pub fn defense(self) -> Option<Defense> {
        match self {
            DefenseSel::None => None,
            DefenseSel::RobustDriver => Some(Defense::RobustDriver),
            DefenseSel::BandgapThreshold => Some(Defense::BandgapThreshold),
            DefenseSel::SizedNeuron => Some(Defense::sized_neuron_paper()),
            DefenseSel::Comparator => Some(Defense::ComparatorFirstStage),
        }
    }
}

impl fmt::Display for DefenseSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which §V-C detector a cell arms. `None` means no detection row is
/// derived for the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorSel {
    /// No detector (the legacy default).
    None,
    /// The dummy-neuron spike-count detector with the paper's ≥10%
    /// deviation rule.
    DummyNeuron,
}

impl DetectorSel {
    /// The grammar name.
    pub fn name(self) -> &'static str {
        match self {
            DetectorSel::None => "none",
            DetectorSel::DummyNeuron => "dummy_neuron",
        }
    }

    /// Parses a grammar name.
    pub fn parse(name: &str) -> Result<DetectorSel, Error> {
        match name {
            "none" => Ok(DetectorSel::None),
            "dummy_neuron" => Ok(DetectorSel::DummyNeuron),
            other => Err(Error::Invalid(format!(
                "unknown detector `{}` (detectors: none dummy_neuron)",
                truncate_token(other)
            ))),
        }
    }
}

impl fmt::Display for DetectorSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The values of one axis, typed by what the axis means.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValues {
    /// Real-valued points (`rel_change`, `fraction`, `theta_change`,
    /// `vdd`, `polarity`).
    Real(Vec<f64>),
    /// Layer selections (`layer`).
    Layer(Vec<LayerSel>),
    /// Seeds (`seed`).
    Seed(Vec<u64>),
    /// Defense selections (`defense`).
    Defense(Vec<DefenseSel>),
    /// Detector selections (`detector`).
    Detector(Vec<DetectorSel>),
    /// Layer-netlist neuron counts (`neurons`).
    Neurons(Vec<u64>),
}

impl AxisValues {
    /// Number of points on the axis.
    pub fn len(&self) -> usize {
        match self {
            AxisValues::Real(v) => v.len(),
            AxisValues::Layer(v) => v.len(),
            AxisValues::Seed(v) => v.len(),
            AxisValues::Defense(v) => v.len(),
            AxisValues::Detector(v) => v.len(),
            AxisValues::Neurons(v) => v.len(),
        }
    }

    /// True when the axis has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The real values, when this is a real axis.
    pub fn reals(&self) -> Option<&[f64]> {
        match self {
            AxisValues::Real(v) => Some(v),
            _ => None,
        }
    }
}

/// One typed axis of a scenario's parameter space.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// What the axis means.
    pub kind: AxisKind,
    /// Its points, in sweep order.
    pub values: AxisValues,
}

impl Axis {
    /// A real-valued axis.
    pub fn real(kind: AxisKind, values: Vec<f64>) -> Axis {
        Axis {
            kind,
            values: AxisValues::Real(values),
        }
    }

    /// A layer axis.
    pub fn layers(values: Vec<LayerSel>) -> Axis {
        Axis {
            kind: AxisKind::Layer,
            values: AxisValues::Layer(values),
        }
    }

    /// A seed axis.
    pub fn seeds(values: Vec<u64>) -> Axis {
        Axis {
            kind: AxisKind::Seed,
            values: AxisValues::Seed(values),
        }
    }

    /// A defense axis.
    pub fn defenses(values: Vec<DefenseSel>) -> Axis {
        Axis {
            kind: AxisKind::Defense,
            values: AxisValues::Defense(values),
        }
    }

    /// A detector axis.
    pub fn detectors(values: Vec<DetectorSel>) -> Axis {
        Axis {
            kind: AxisKind::Detector,
            values: AxisValues::Detector(values),
        }
    }

    /// A layer-netlist neuron-count axis.
    pub fn neurons(values: Vec<u64>) -> Axis {
        Axis {
            kind: AxisKind::Neurons,
            values: AxisValues::Neurons(values),
        }
    }

    /// The grammar token of one value (`-0.2`, `inhibitory`, `42`) —
    /// `None` past the end of the axis. Lossless: reals print in
    /// shortest round-trippable form, seeds as full integers.
    pub fn value_label(&self, index: usize) -> Option<String> {
        match &self.values {
            AxisValues::Real(v) => v.get(index).map(|x| format!("{x}")),
            AxisValues::Layer(v) => v.get(index).map(|l| l.name().to_string()),
            AxisValues::Seed(v) => v.get(index).map(|s| s.to_string()),
            AxisValues::Defense(v) => v.get(index).map(|d| d.name().to_string()),
            AxisValues::Detector(v) => v.get(index).map(|d| d.name().to_string()),
            AxisValues::Neurons(v) => v.get(index).map(|n| n.to_string()),
        }
    }

    /// Parses the `NAME=VALUES` grammar (see the module docs).
    ///
    /// # Errors
    /// Rejects unknown or overlong names, malformed values, and axes
    /// longer than [`MAX_AXIS_VALUES`].
    pub fn parse(text: &str) -> Result<Axis, Error> {
        let (name, values) = text.split_once('=').ok_or_else(|| {
            Error::Invalid(format!(
                "axis `{}` is not NAME=VALUES",
                truncate_token(text)
            ))
        })?;
        let kind = AxisKind::parse(name.trim())?;
        let values = values.trim();
        let parsed = match kind {
            AxisKind::Layer => AxisValues::Layer(
                split_values(values)?
                    .iter()
                    .map(|t| LayerSel::parse(t))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            AxisKind::Seed => AxisValues::Seed(parse_seed_values(values)?),
            AxisKind::Neurons => AxisValues::Neurons(parse_seed_values(values)?),
            AxisKind::Defense => AxisValues::Defense(
                split_values(values)?
                    .iter()
                    .map(|t| DefenseSel::parse(t))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            AxisKind::Detector => AxisValues::Detector(
                split_values(values)?
                    .iter()
                    .map(|t| DetectorSel::parse(t))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            AxisKind::Polarity => AxisValues::Real(
                split_values(values)?
                    .iter()
                    .map(|t| match *t {
                        "+" => Ok(1.0),
                        "-" => Ok(-1.0),
                        t => parse_real(t),
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            _ => AxisValues::Real(parse_real_values(values)?),
        };
        if parsed.is_empty() {
            return Err(Error::Invalid(format!("axis `{}` has no values", kind)));
        }
        if parsed.len() > MAX_AXIS_VALUES {
            return Err(Error::Invalid(format!(
                "axis `{kind}` has {} values, more than the {MAX_AXIS_VALUES} cap",
                parsed.len()
            )));
        }
        Ok(Axis {
            kind,
            values: parsed,
        })
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = ", self.kind)?;
        match &self.values {
            AxisValues::Real(v) => join_display(f, v),
            AxisValues::Layer(v) => join_display(f, v),
            AxisValues::Seed(v) => join_display(f, v),
            AxisValues::Defense(v) => join_display(f, v),
            AxisValues::Detector(v) => join_display(f, v),
            AxisValues::Neurons(v) => join_display(f, v),
        }
    }
}

fn join_display<T: fmt::Display>(f: &mut fmt::Formatter<'_>, values: &[T]) -> fmt::Result {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{v}")?;
    }
    Ok(())
}

/// Clips a hostile token for error messages so a multi-megabyte input
/// never echoes whole.
fn truncate_token(token: &str) -> String {
    let mut end = token.len().min(MAX_NAME_LEN);
    while !token.is_char_boundary(end) {
        end -= 1;
    }
    if end < token.len() {
        format!("{}…", &token[..end])
    } else {
        token.to_string()
    }
}

fn split_values(text: &str) -> Result<Vec<&str>, Error> {
    let values: Vec<&str> = text.split(',').map(str::trim).collect();
    if values.len() > MAX_AXIS_VALUES {
        return Err(Error::Invalid(format!(
            "{} values exceed the {MAX_AXIS_VALUES} cap",
            values.len()
        )));
    }
    Ok(values)
}

/// One real literal: a float with an optional `%` suffix (percent of
/// one, so `-20%` parses to −0.20).
fn parse_real(token: &str) -> Result<f64, Error> {
    let (body, percent) = match token.strip_suffix('%') {
        Some(body) => (body.trim(), true),
        None => (token, false),
    };
    let value: f64 = body
        .parse()
        .map_err(|_| Error::Invalid(format!("`{}` is not a number", truncate_token(token))))?;
    Ok(if percent { value / 100.0 } else { value })
}

/// Real axis values: a comma list, or a `start..end/count` linear range
/// (endpoints included, `count >= 2`).
fn parse_real_values(text: &str) -> Result<Vec<f64>, Error> {
    if let Some(split) = text.find("..") {
        let start = parse_real(text[..split].trim())?;
        let rest = &text[split + 2..];
        let (end_text, count_text) = rest.split_once('/').ok_or_else(|| {
            Error::Invalid(format!(
                "range `{}` needs a point count: start..end/count",
                truncate_token(text)
            ))
        })?;
        let end = parse_real(end_text.trim())?;
        let count: usize = count_text.trim().parse().map_err(|_| {
            Error::Invalid(format!(
                "`{}` is not a point count",
                truncate_token(count_text)
            ))
        })?;
        if count < 2 {
            return Err(Error::Invalid(
                "a range needs at least 2 points (use a plain value otherwise)".into(),
            ));
        }
        if count > MAX_AXIS_VALUES {
            return Err(Error::Invalid(format!(
                "range of {count} points exceeds the {MAX_AXIS_VALUES} cap"
            )));
        }
        return Ok((0..count)
            .map(|i| {
                // Pin the endpoints so `0.8..1.2/5` ends on exactly 1.2
                // instead of an accumulation artefact.
                if i == 0 {
                    start
                } else if i == count - 1 {
                    end
                } else {
                    start + (end - start) * (i as f64) / ((count - 1) as f64)
                }
            })
            .collect());
    }
    split_values(text)?.iter().map(|t| parse_real(t)).collect()
}

/// Seed values: a comma list of integers, or an inclusive `start..end`
/// integer range. Public for CLI front ends (`--seeds 1..8`).
///
/// # Errors
/// Rejects non-integers, reversed ranges, and hostile lengths.
pub fn parse_seed_values(text: &str) -> Result<Vec<u64>, Error> {
    let parse_one = |token: &str| -> Result<u64, Error> {
        token
            .trim()
            .parse()
            .map_err(|_| Error::Invalid(format!("`{}` is not a seed", truncate_token(token))))
    };
    if let Some(split) = text.find("..") {
        let start = parse_one(&text[..split])?;
        let end = parse_one(&text[split + 2..])?;
        if end < start {
            return Err(Error::Invalid(format!(
                "seed range {start}..{end} is reversed"
            )));
        }
        // Span-first comparison: `end - start` cannot overflow (end >=
        // start), while a naive `+ 1` count would panic on 0..u64::MAX.
        if end - start >= MAX_AXIS_VALUES as u64 {
            return Err(Error::Invalid(format!(
                "seed range {start}..{end} exceeds the {MAX_AXIS_VALUES}-value cap"
            )));
        }
        return Ok((start..=end).collect());
    }
    split_values(text)?.iter().map(|t| parse_one(t)).collect()
}

/// The attack family of a scenario: which paper attack the cells
/// instantiate, and therefore which axis carries the primary change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackFamily {
    /// Attacks 2–4: threshold manipulation of the selected layer(s).
    /// A `layer` axis overrides the selection per cell.
    Threshold(LayerSel),
    /// Attack 1: input-drive (theta) corruption.
    Theta,
    /// Attack 5: global VDD manipulation via the transfer table.
    Vdd,
}

impl AttackFamily {
    /// Every family, with the threshold variants enumerated.
    pub const ALL: [AttackFamily; 5] = [
        AttackFamily::Threshold(LayerSel::Excitatory),
        AttackFamily::Threshold(LayerSel::Inhibitory),
        AttackFamily::Threshold(LayerSel::Both),
        AttackFamily::Theta,
        AttackFamily::Vdd,
    ];

    /// The grammar/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            AttackFamily::Threshold(LayerSel::Excitatory) => "threshold-excitatory",
            AttackFamily::Threshold(LayerSel::Inhibitory) => "threshold-inhibitory",
            AttackFamily::Threshold(LayerSel::Both) => "threshold-both",
            AttackFamily::Theta => "theta",
            AttackFamily::Vdd => "vdd",
        }
    }

    /// Parses a grammar/CLI name.
    pub fn parse(name: &str) -> Result<AttackFamily, Error> {
        if name.len() > MAX_NAME_LEN {
            return Err(Error::Invalid(format!(
                "attack name of {} bytes exceeds the {MAX_NAME_LEN}-byte cap",
                name.len()
            )));
        }
        AttackFamily::ALL
            .into_iter()
            .find(|f| f.name() == name)
            .ok_or_else(|| {
                Error::Invalid(format!(
                    "unknown attack `{name}` (attacks: {})",
                    AttackFamily::ALL.map(AttackFamily::name).join(" ")
                ))
            })
    }

    /// The paper attack kind this family reports as. A `layer` axis
    /// refines the layer per cell; the scenario-level kind reflects the
    /// family's default selection.
    pub fn kind(self) -> AttackKind {
        match self {
            AttackFamily::Threshold(LayerSel::Excitatory) => AttackKind::ExcitatoryThreshold,
            AttackFamily::Threshold(LayerSel::Inhibitory) => AttackKind::InhibitoryThreshold,
            AttackFamily::Threshold(LayerSel::Both) => AttackKind::BothLayerThreshold,
            AttackFamily::Theta => AttackKind::InputSpikeCorruption,
            AttackFamily::Vdd => AttackKind::GlobalVdd,
        }
    }

    /// The axis carrying the family's primary change.
    pub fn primary_axis(self) -> AxisKind {
        match self {
            AttackFamily::Threshold(_) => AxisKind::RelChange,
            AttackFamily::Theta => AxisKind::ThetaChange,
            AttackFamily::Vdd => AxisKind::Vdd,
        }
    }
}

impl fmt::Display for AttackFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A declarative N-axis sweep scenario: an attack family, an ordered
/// list of typed axes, the seeds each cell averages over, and (for VDD
/// components) the circuit transfer table. One generic planner
/// ([`ScenarioSpec::plan`]) turns it into index-addressed
/// [`CellJob`]s; the paper's three grids, the preset catalog, and every
/// custom cross product all flow through it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The attack family (determines the primary axis and the reported
    /// [`AttackKind`]).
    pub family: AttackFamily,
    /// The axes, in sweep order (first axis slowest; cells are
    /// enumerated row-major).
    pub axes: Vec<Axis>,
    /// Seeds every cell averages over. Empty when (and only when) a
    /// `seed` axis supplies per-cell seeds instead.
    pub seeds: Vec<u64>,
    /// VDD → parameter transfer points, strictly increasing in VDD.
    /// Required whenever a `vdd` axis is present; serialised
    /// point-by-point so heterogeneous workers share one
    /// characterisation.
    pub transfer: Option<Vec<TransferPoint>>,
}

impl ScenarioSpec {
    /// A threshold scenario over `rel_changes × fractions` — the shape
    /// of the paper's Figs. 8a–c. `layer = None` is Attack 4, which the
    /// paper defines at 100%, so fractions other than 1.0 are dropped
    /// (exactly as the legacy planner did).
    pub fn threshold(layer: Option<TargetLayer>, config: &SweepConfig) -> ScenarioSpec {
        let fractions: Vec<f64> = if layer.is_none() {
            config
                .fractions
                .iter()
                .copied()
                .filter(|f| (f - 1.0).abs() <= 1e-9)
                .collect()
        } else {
            config.fractions.clone()
        };
        ScenarioSpec {
            family: AttackFamily::Threshold(LayerSel::from_target(layer)),
            axes: vec![
                Axis::real(AxisKind::RelChange, config.rel_changes.clone()),
                Axis::real(AxisKind::Fraction, fractions),
            ],
            seeds: config.seeds.clone(),
            transfer: None,
        }
    }

    /// A theta scenario over `theta_changes` (Fig. 7b's shape).
    pub fn theta(theta_changes: &[f64], seeds: &[u64]) -> ScenarioSpec {
        ScenarioSpec {
            family: AttackFamily::Theta,
            axes: vec![Axis::real(AxisKind::ThetaChange, theta_changes.to_vec())],
            seeds: seeds.to_vec(),
            transfer: None,
        }
    }

    /// A VDD scenario over `vdds` (Fig. 9a's shape) with the given
    /// transfer characterisation.
    pub fn vdd(vdds: &[f64], transfer: &PowerTransferTable, seeds: &[u64]) -> ScenarioSpec {
        ScenarioSpec {
            family: AttackFamily::Vdd,
            axes: vec![Axis::real(AxisKind::Vdd, vdds.to_vec())],
            seeds: seeds.to_vec(),
            transfer: Some(transfer.points().to_vec()),
        }
    }

    /// The axis of the given kind, if present.
    pub fn axis(&self, kind: AxisKind) -> Option<&Axis> {
        self.axes.iter().find(|a| a.kind == kind)
    }

    /// The per-axis point counts, in axis order.
    pub fn shape(&self) -> Vec<usize> {
        self.axes.iter().map(|a| a.values.len()).collect()
    }

    /// Number of cells the scenario enumerates (the product of the axis
    /// lengths; 0 when any axis is empty or none exist).
    pub fn n_cells(&self) -> usize {
        if self.axes.is_empty() {
            return 0;
        }
        self.axes
            .iter()
            .map(|a| a.values.len())
            .try_fold(1usize, |acc, n| acc.checked_mul(n))
            .unwrap_or(usize::MAX)
    }

    /// The seeds baselines are primed (and the mean baseline derived)
    /// over: the `seed` axis when present, the averaged list otherwise.
    pub fn baseline_seeds(&self) -> &[u64] {
        match self.axis(AxisKind::Seed) {
            Some(Axis {
                values: AxisValues::Seed(seeds),
                ..
            }) => seeds,
            _ => &self.seeds,
        }
    }

    /// The scenario-level attack kind (see [`AttackFamily::kind`]).
    pub fn kind(&self) -> AttackKind {
        self.family.kind()
    }

    /// Rejects scenarios that cannot run. Checks the axis set (primary
    /// axis present, no duplicates, family-compatible kinds), the value
    /// ranges, the seed configuration, the transfer table, and every
    /// hostile-size cap.
    ///
    /// # Errors
    /// Returns [`Error::Invalid`] naming the violation.
    pub fn validate(&self) -> Result<(), Error> {
        if self.axes.is_empty() {
            return Err(Error::Invalid("scenario has no axes".into()));
        }
        if self.axes.len() > MAX_AXES {
            return Err(Error::Invalid(format!(
                "{} axes exceed the {MAX_AXES} cap",
                self.axes.len()
            )));
        }
        for (i, axis) in self.axes.iter().enumerate() {
            if axis.values.is_empty() {
                return Err(Error::Invalid(format!(
                    "axis `{}` has no values",
                    axis.kind
                )));
            }
            if axis.values.len() > MAX_AXIS_VALUES {
                return Err(Error::Invalid(format!(
                    "axis `{}` has {} values, more than the {MAX_AXIS_VALUES} cap",
                    axis.kind,
                    axis.values.len()
                )));
            }
            if self.axes[..i].iter().any(|a| a.kind == axis.kind) {
                return Err(Error::Invalid(format!(
                    "axis `{}` appears twice",
                    axis.kind
                )));
            }
            self.validate_axis(axis)?;
        }
        if self.n_cells() > MAX_CELLS {
            return Err(Error::Invalid(format!(
                "scenario enumerates more than {MAX_CELLS} cells"
            )));
        }
        let primary = self.family.primary_axis();
        if self.axis(primary).is_none() {
            return Err(Error::Invalid(format!(
                "attack `{}` needs a `{primary}` axis",
                self.family
            )));
        }
        // Polarity multiplies the primary change at planning time, so
        // the *products* must stay in the primary axis's valid range —
        // otherwise a spec that validates here would have every scaled
        // cell rejected at execution (on a coordinator: accepted,
        // journal-bound, then poisoned cell by cell).
        if let Some(polarity) = self.axis(AxisKind::Polarity) {
            let products_ok = |scaled: f64| match self.family {
                AttackFamily::Threshold(_) => scaled.is_finite() && scaled > -1.0 && scaled < 1.0,
                AttackFamily::Theta => scaled.is_finite() && scaled > -1.0,
                AttackFamily::Vdd => true,
            };
            if let (Some(values), Some(polarities)) = (
                self.axis(primary).and_then(|a| a.values.reals()),
                polarity.values.reals(),
            ) {
                for &p in polarities {
                    for &v in values {
                        if !products_ok(v * p) {
                            return Err(Error::Invalid(format!(
                                "polarity {p} drives {primary} value {v} to {}, \
                                 outside the axis's valid range",
                                v * p
                            )));
                        }
                    }
                }
            }
        }
        match self.axis(AxisKind::Seed) {
            Some(_) if !self.seeds.is_empty() => {
                return Err(Error::Invalid(
                    "a seed axis and an averaged seed list cannot be combined".into(),
                ))
            }
            None if self.seeds.is_empty() => {
                return Err(Error::Invalid("scenario has no seeds".into()))
            }
            _ => {}
        }
        if self.seeds.len() > MAX_SEEDS {
            return Err(Error::Invalid(format!(
                "{} seeds exceed the {MAX_SEEDS} cap",
                self.seeds.len()
            )));
        }
        if self.axis(AxisKind::Vdd).is_some() {
            let Some(transfer) = &self.transfer else {
                return Err(Error::Invalid(
                    "a vdd axis needs a transfer table (`transfer = paper`)".into(),
                ));
            };
            validate_transfer(transfer)?;
        } else if let Some(transfer) = &self.transfer {
            // Tolerated but still has to be usable: the spec is
            // digested and shipped as-is.
            validate_transfer(transfer)?;
        }
        Ok(())
    }

    fn validate_axis(&self, axis: &Axis) -> Result<(), Error> {
        let threshold = matches!(self.family, AttackFamily::Threshold(_));
        let reals = axis.values.reals();
        match axis.kind {
            AxisKind::RelChange => {
                if !threshold {
                    return Err(Error::Invalid(format!(
                        "a rel_change axis needs a threshold attack, not `{}`",
                        self.family
                    )));
                }
                expect_reals(
                    axis,
                    reals,
                    |v| v.is_finite() && v > -1.0 && v < 1.0,
                    "relative threshold changes must be finite and within (-1, 1)",
                )
            }
            AxisKind::Fraction => {
                if !threshold {
                    return Err(Error::Invalid(format!(
                        "a fraction axis needs a threshold attack, not `{}`",
                        self.family
                    )));
                }
                expect_reals(
                    axis,
                    reals,
                    |v| (0.0..=1.0).contains(&v),
                    "fractions must be within [0, 1]",
                )
            }
            AxisKind::ThetaChange => expect_reals(
                axis,
                reals,
                |v| v.is_finite() && v > -1.0,
                "theta changes must be finite and greater than -1",
            ),
            AxisKind::Vdd => expect_reals(
                axis,
                reals,
                |v| v.is_finite() && v > 0.0,
                "supply voltages must be finite and positive",
            ),
            AxisKind::Polarity => {
                if !matches!(
                    self.family,
                    AttackFamily::Threshold(_) | AttackFamily::Theta
                ) {
                    return Err(Error::Invalid(format!(
                        "a polarity axis needs a signed primary change; attack `{}` has none",
                        self.family
                    )));
                }
                expect_reals(
                    axis,
                    reals,
                    |v| v.is_finite() && v != 0.0,
                    "polarities must be finite and non-zero",
                )
            }
            AxisKind::Layer => {
                if !threshold {
                    return Err(Error::Invalid(format!(
                        "a layer axis needs a threshold attack, not `{}`",
                        self.family
                    )));
                }
                match &axis.values {
                    AxisValues::Layer(_) => Ok(()),
                    _ => Err(Error::Invalid("layer axis carries non-layer values".into())),
                }
            }
            AxisKind::Seed => match &axis.values {
                AxisValues::Seed(_) => Ok(()),
                _ => Err(Error::Invalid("seed axis carries non-seed values".into())),
            },
            // The countermeasure axes act through the VDD path: a
            // defense hardens the transfer table the vdd fault is
            // sampled from, a detector senses supply droop. Without a
            // vdd axis every non-`none` value would be a silent no-op,
            // so such specs are rejected up front (an all-`none` axis
            // is fine — it is the explicit spelling of the default).
            AxisKind::Defense => {
                let AxisValues::Defense(values) = &axis.values else {
                    return Err(Error::Invalid(
                        "defense axis carries non-defense values".into(),
                    ));
                };
                if values.iter().any(|&d| d != DefenseSel::None)
                    && self.axis(AxisKind::Vdd).is_none()
                {
                    return Err(Error::Invalid(
                        "a defense axis needs a `vdd` axis to defend against \
                         (defenses harden the VDD transfer table)"
                            .into(),
                    ));
                }
                Ok(())
            }
            AxisKind::Detector => {
                let AxisValues::Detector(values) = &axis.values else {
                    return Err(Error::Invalid(
                        "detector axis carries non-detector values".into(),
                    ));
                };
                if values.iter().any(|&d| d != DetectorSel::None)
                    && self.axis(AxisKind::Vdd).is_none()
                {
                    return Err(Error::Invalid(
                        "a detector axis needs a `vdd` axis to watch \
                         (the dummy neuron senses supply droop)"
                            .into(),
                    ));
                }
                Ok(())
            }
            // The layer-netlist workload simulates the actual analog
            // layer at the cell's supply voltage, so it only composes
            // with the vdd family; defenses must have a circuit
            // realisation in the layer (the transfer-table-only
            // hardenings would be silent no-ops).
            AxisKind::Neurons => {
                let AxisValues::Neurons(values) = &axis.values else {
                    return Err(Error::Invalid(
                        "neurons axis carries non-integer values".into(),
                    ));
                };
                if self.family != AttackFamily::Vdd {
                    return Err(Error::Invalid(format!(
                        "a neurons axis needs the vdd attack (the layer netlist \
                         models the supply attack surface), not `{}`",
                        self.family
                    )));
                }
                if let Some(bad) = values
                    .iter()
                    .copied()
                    .find(|&n| n == 0 || n > MAX_LAYER_NEURONS)
                {
                    return Err(Error::Invalid(format!(
                        "axis `neurons`: layer sizes must be within \
                         [1, {MAX_LAYER_NEURONS}] (got {bad})"
                    )));
                }
                if let Some(Axis {
                    values: AxisValues::Defense(defenses),
                    ..
                }) = self.axis(AxisKind::Defense)
                {
                    if let Some(bad) = defenses.iter().copied().find(|d| {
                        !matches!(
                            d,
                            DefenseSel::None | DefenseSel::SizedNeuron | DefenseSel::Comparator
                        )
                    }) {
                        return Err(Error::Invalid(format!(
                            "defense `{bad}` has no circuit realisation in the \
                             layer netlist (layer defenses: none sized_neuron \
                             comparator)"
                        )));
                    }
                }
                Ok(())
            }
        }
    }

    /// The transfer table VDD components execute against (`None` when
    /// the scenario has no `vdd` axis).
    ///
    /// # Errors
    /// Returns [`Error::Invalid`] for missing or unusable tables.
    pub fn transfer_table(&self) -> Result<Option<PowerTransferTable>, Error> {
        if self.axis(AxisKind::Vdd).is_none() {
            return Ok(None);
        }
        let Some(transfer) = &self.transfer else {
            return Err(Error::Invalid(
                "a vdd axis needs a transfer table (`transfer = paper`)".into(),
            ));
        };
        validate_transfer(transfer)?;
        Ok(Some(PowerTransferTable::new(transfer.clone())))
    }

    /// Stage 1 (enumerate): flattens the axis cross product into a
    /// [`SweepPlan`] of index-addressed [`CellJob`]s, row-major over
    /// the axes (first axis slowest). The plan carries the resolved
    /// axes, so the assembled result is addressable by axis indices.
    ///
    /// Planning never fails for validated specs — invalid parameter
    /// values are rejected by [`ScenarioSpec::validate`] up front and
    /// by [`execute_cell`](crate::sweep::execute_cell) per cell (jobs
    /// may arrive over a wire).
    ///
    /// # Panics
    /// Panics (instead of attempting a pathological allocation) when
    /// the axis product exceeds [`MAX_CELLS`] — every untrusted path
    /// validates first, so this only fires on a caller that skipped
    /// [`ScenarioSpec::validate`].
    pub fn plan(&self) -> SweepPlan {
        let shape = self.shape();
        let total = self.n_cells();
        assert!(
            total <= MAX_CELLS,
            "scenario enumerates {total} cells, over the {MAX_CELLS} cap; \
             call validate() before plan()"
        );
        let mut jobs = Vec::with_capacity(total.min(MAX_CELLS));
        let mut indices = vec![0usize; shape.len()];
        for index in 0..total {
            jobs.push(CellJob {
                index,
                attack: self.resolve(&indices),
            });
            for d in (0..indices.len()).rev() {
                indices[d] += 1;
                if indices[d] < shape[d] {
                    break;
                }
                indices[d] = 0;
            }
        }
        SweepPlan {
            kind: self.kind(),
            seeds: self.baseline_seeds().to_vec(),
            axes: self.axes.clone(),
            jobs,
        }
    }

    /// Resolves one cell: the axis values at `indices` folded into a
    /// composite [`CellAttack`].
    fn resolve(&self, indices: &[usize]) -> CellAttack {
        let mut family = self.family;
        let mut attack = CellAttack {
            family,
            rel_change: None,
            fraction: 1.0,
            theta_change: None,
            vdd: None,
            seed: None,
            defense: DefenseSel::None,
            detector: DetectorSel::None,
            neurons: None,
        };
        let mut polarity: Option<f64> = None;
        for (axis, &i) in self.axes.iter().zip(indices) {
            match (&axis.kind, &axis.values) {
                (AxisKind::RelChange, AxisValues::Real(v)) => attack.rel_change = Some(v[i]),
                (AxisKind::Fraction, AxisValues::Real(v)) => attack.fraction = v[i],
                (AxisKind::ThetaChange, AxisValues::Real(v)) => attack.theta_change = Some(v[i]),
                (AxisKind::Vdd, AxisValues::Real(v)) => attack.vdd = Some(v[i]),
                (AxisKind::Polarity, AxisValues::Real(v)) => polarity = Some(v[i]),
                (AxisKind::Layer, AxisValues::Layer(v)) => {
                    if let AttackFamily::Threshold(_) = family {
                        family = AttackFamily::Threshold(v[i]);
                    }
                }
                (AxisKind::Seed, AxisValues::Seed(v)) => attack.seed = Some(v[i]),
                (AxisKind::Defense, AxisValues::Defense(v)) => attack.defense = v[i],
                (AxisKind::Detector, AxisValues::Detector(v)) => attack.detector = v[i],
                (AxisKind::Neurons, AxisValues::Neurons(v)) => attack.neurons = Some(v[i]),
                // Kind/values mismatches are rejected by validate();
                // planning an unvalidated spec just skips them.
                _ => {}
            }
        }
        attack.family = family;
        if let Some(p) = polarity {
            match family {
                AttackFamily::Threshold(_) => attack.rel_change = attack.rel_change.map(|v| v * p),
                AttackFamily::Theta => attack.theta_change = attack.theta_change.map(|v| v * p),
                AttackFamily::Vdd => {}
            }
        }
        attack
    }
}

fn expect_reals(
    axis: &Axis,
    reals: Option<&[f64]>,
    ok: impl Fn(f64) -> bool,
    message: &str,
) -> Result<(), Error> {
    let Some(values) = reals else {
        return Err(Error::Invalid(format!(
            "axis `{}` carries non-numeric values",
            axis.kind
        )));
    };
    match values.iter().copied().find(|&v| !ok(v)) {
        Some(bad) => Err(Error::Invalid(format!(
            "axis `{}`: {message} (got {bad})",
            axis.kind
        ))),
        None => Ok(()),
    }
}

fn validate_transfer(transfer: &[TransferPoint]) -> Result<(), Error> {
    if transfer.len() < 2 {
        return Err(Error::Invalid(
            "a transfer table needs at least two points".into(),
        ));
    }
    if !transfer.windows(2).all(|w| w[0].vdd < w[1].vdd) {
        return Err(Error::Invalid(
            "transfer points must be strictly increasing in vdd".into(),
        ));
    }
    Ok(())
}

impl fmt::Display for ScenarioSpec {
    /// The canonical line-based text form (see the module docs).
    /// Ranges are expanded to explicit value lists, so
    /// parse → display → parse is the identity bit-for-bit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "attack = {}", self.family)?;
        for axis in &self.axes {
            writeln!(f, "axis {axis}")?;
        }
        if !self.seeds.is_empty() {
            write!(f, "seeds = ")?;
            join_display(f, &self.seeds)?;
            writeln!(f)?;
        }
        if let Some(transfer) = &self.transfer {
            if transfer.as_slice() == PowerTransferTable::paper_nominal().points() {
                writeln!(f, "transfer = paper")?;
            } else {
                write!(f, "transfer = ")?;
                for (i, p) in transfer.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(
                        f,
                        "{}:{}:{}:{}",
                        p.vdd, p.drive_scale, p.ah_threshold_scale, p.if_threshold_scale
                    )?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

impl FromStr for ScenarioSpec {
    type Err = Error;

    /// Parses the line-based text form (see the module docs): one
    /// `attack = NAME` line, one `axis NAME = VALUES` line per axis,
    /// and optional `seeds = ...` / `transfer = ...` lines. Blank
    /// lines and `#` comments are ignored; unknown keys are rejected.
    fn from_str(text: &str) -> Result<ScenarioSpec, Error> {
        let mut family: Option<AttackFamily> = None;
        let mut axes: Vec<Axis> = Vec::new();
        let mut seeds: Option<Vec<u64>> = None;
        let mut transfer: Option<Vec<TransferPoint>> = None;
        for line in spec_lines(text)? {
            match parse_spec_line(line)? {
                SpecLine::Attack(f) => {
                    if family.replace(f).is_some() {
                        return Err(Error::Invalid("duplicate `attack` line".into()));
                    }
                }
                SpecLine::Axis(axis) => {
                    if axes.len() >= MAX_AXES {
                        return Err(Error::Invalid(format!("more than {MAX_AXES} axes")));
                    }
                    if axes.iter().any(|a| a.kind == axis.kind) {
                        return Err(Error::Invalid(format!(
                            "axis `{}` appears twice",
                            axis.kind
                        )));
                    }
                    axes.push(axis);
                }
                SpecLine::Seeds(s) => {
                    if seeds.replace(s).is_some() {
                        return Err(Error::Invalid("duplicate `seeds` line".into()));
                    }
                }
                SpecLine::Transfer(t) => {
                    if transfer.replace(t).is_some() {
                        return Err(Error::Invalid("duplicate `transfer` line".into()));
                    }
                }
                SpecLine::Other(key, _) => {
                    return Err(Error::Invalid(format!(
                        "unknown key `{}` (keys: attack, axis NAME, seeds, transfer)",
                        truncate_token(key)
                    )))
                }
            }
        }
        let Some(family) = family else {
            return Err(Error::Invalid("spec is missing its `attack` line".into()));
        };
        Ok(ScenarioSpec {
            family,
            axes,
            seeds: seeds.unwrap_or_default(),
            transfer,
        })
    }
}

/// A classified spec line, shared with the campaign-file parser in
/// `neurofi-dist` (which handles `Other` keys like `name` and `setup`
/// before delegating the rest here).
#[derive(Debug)]
pub enum SpecLine<'a> {
    /// `attack = NAME`.
    Attack(AttackFamily),
    /// `axis NAME = VALUES`.
    Axis(Axis),
    /// `seeds = ...`.
    Seeds(Vec<u64>),
    /// `transfer = paper` or explicit points.
    Transfer(Vec<TransferPoint>),
    /// Any other `key = value` line, returned for the caller to
    /// interpret (or reject).
    Other(&'a str, &'a str),
}

/// Splits spec text into meaningful lines, enforcing the
/// [`MAX_SPEC_TEXT`] hostile-input cap and stripping blanks and `#`
/// comments.
///
/// # Errors
/// Rejects oversized input.
pub fn spec_lines(text: &str) -> Result<impl Iterator<Item = &str>, Error> {
    if text.len() > MAX_SPEC_TEXT {
        return Err(Error::Invalid(format!(
            "spec text of {} bytes exceeds the {MAX_SPEC_TEXT}-byte cap",
            text.len()
        )));
    }
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#')))
}

/// Classifies one spec line.
///
/// # Errors
/// Rejects malformed axis/attack/seeds/transfer lines; unknown keys
/// are *returned* as [`SpecLine::Other`], not rejected, so wrappers
/// can layer their own keys on the grammar.
pub fn parse_spec_line(line: &str) -> Result<SpecLine<'_>, Error> {
    if let Some(axis) = line.strip_prefix("axis ") {
        return Ok(SpecLine::Axis(Axis::parse(axis.trim())?));
    }
    let Some((key, value)) = line.split_once('=') else {
        return Err(Error::Invalid(format!(
            "line `{}` is not `key = value`",
            truncate_token(line)
        )));
    };
    let (key, value) = (key.trim(), value.trim());
    match key {
        "attack" => Ok(SpecLine::Attack(AttackFamily::parse(value)?)),
        "seeds" => Ok(SpecLine::Seeds(parse_seed_values(value)?)),
        "transfer" => Ok(SpecLine::Transfer(parse_transfer(value)?)),
        other => Ok(SpecLine::Other(other, value)),
    }
}

/// Transfer-table values: `paper` for the paper-nominal
/// characterisation, or explicit `vdd:drive:ah:if` 4-tuples separated
/// by `;`. Public for CLI front ends (`--transfer paper`).
///
/// # Errors
/// Rejects malformed points and hostile lengths.
pub fn parse_transfer(value: &str) -> Result<Vec<TransferPoint>, Error> {
    if value == "paper" {
        return Ok(PowerTransferTable::paper_nominal().points().to_vec());
    }
    let points: Vec<&str> = value.split(';').map(str::trim).collect();
    if points.len() > MAX_AXIS_VALUES {
        return Err(Error::Invalid(format!(
            "{} transfer points exceed the {MAX_AXIS_VALUES} cap",
            points.len()
        )));
    }
    points
        .iter()
        .map(|point| {
            let fields: Vec<&str> = point.split(':').map(str::trim).collect();
            if fields.len() != 4 {
                return Err(Error::Invalid(format!(
                    "transfer point `{}` is not vdd:drive:ah:if",
                    truncate_token(point)
                )));
            }
            Ok(TransferPoint {
                vdd: parse_real(fields[0])?,
                drive_scale: parse_real(fields[1])?,
                ah_threshold_scale: parse_real(fields[2])?,
                if_threshold_scale: parse_real(fields[3])?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::plan_threshold_sweep;

    fn il_spec() -> ScenarioSpec {
        ScenarioSpec {
            family: AttackFamily::Threshold(LayerSel::Inhibitory),
            axes: vec![
                Axis::real(AxisKind::RelChange, vec![-0.2, 0.2]),
                Axis::real(AxisKind::Fraction, vec![0.0, 0.5, 1.0]),
            ],
            seeds: vec![42],
            transfer: None,
        }
    }

    #[test]
    fn axis_grammar_parses_lists_ranges_and_percent() {
        let axis = Axis::parse("rel_change=-20%,20%").unwrap();
        assert_eq!(axis.values, AxisValues::Real(vec![-0.20, 0.20]));
        let axis = Axis::parse("vdd = 0.8..1.2/5").unwrap();
        let AxisValues::Real(v) = &axis.values else {
            panic!()
        };
        assert_eq!(v.len(), 5);
        assert_eq!(v[0], 0.8);
        assert_eq!(v[4], 1.2, "range endpoints are pinned exactly");
        assert_eq!(v[2], 1.0);
        let axis = Axis::parse("seed = 3..6").unwrap();
        assert_eq!(axis.values, AxisValues::Seed(vec![3, 4, 5, 6]));
        let axis = Axis::parse("layer = il, el, both").unwrap();
        assert_eq!(
            axis.values,
            AxisValues::Layer(vec![
                LayerSel::Inhibitory,
                LayerSel::Excitatory,
                LayerSel::Both
            ])
        );
        let axis = Axis::parse("polarity = +, -").unwrap();
        assert_eq!(axis.values, AxisValues::Real(vec![1.0, -1.0]));
    }

    #[test]
    fn axis_grammar_rejects_garbage() {
        assert!(Axis::parse("no_equals").is_err());
        assert!(Axis::parse("bogus=1,2").is_err());
        assert!(Axis::parse(&format!("{}=1", "x".repeat(MAX_NAME_LEN + 1))).is_err());
        assert!(Axis::parse("rel_change=").is_err(), "empty value list");
        assert!(
            Axis::parse("rel_change=0.1..0.2").is_err(),
            "range without count"
        );
        assert!(
            Axis::parse("rel_change=0.1..0.2/1").is_err(),
            "degenerate range"
        );
        assert!(Axis::parse(&format!("rel_change=0..1/{}", MAX_AXIS_VALUES + 1)).is_err());
        assert!(Axis::parse("seed=9..3").is_err(), "reversed seed range");
        // A full-u64 span must be rejected, not overflow the count
        // arithmetic (0..MAX has MAX+1 values).
        assert!(Axis::parse("seed=0..18446744073709551615").is_err());
        assert!(Axis::parse("seed=1..18446744073709551615").is_err());
        assert!(Axis::parse("vdd=over 9000").is_err());
    }

    #[test]
    fn scenario_text_round_trips_bit_exactly() {
        let spec = ScenarioSpec {
            family: AttackFamily::Threshold(LayerSel::Inhibitory),
            axes: vec![
                Axis::real(AxisKind::RelChange, vec![-0.2, 0.1 + 0.2]),
                Axis::real(AxisKind::Fraction, vec![0.0, 0.75]),
                Axis::real(AxisKind::Vdd, vec![0.9, 1.0]),
            ],
            seeds: vec![42, 43],
            transfer: Some(PowerTransferTable::paper_nominal().points().to_vec()),
        };
        let text = spec.to_string();
        assert!(
            text.contains("transfer = paper"),
            "paper table is named: {text}"
        );
        let reparsed: ScenarioSpec = text.parse().unwrap();
        assert_eq!(reparsed, spec);
        // And the round trip is stable.
        assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn scenario_parser_rejects_unknown_keys_and_duplicates() {
        assert!(
            "axis rel_change = 0.1".parse::<ScenarioSpec>().is_err(),
            "missing attack"
        );
        assert!("attack = threshold-inhibitory\nattack = theta"
            .parse::<ScenarioSpec>()
            .is_err());
        assert!("attack = theta\nbogus = 1".parse::<ScenarioSpec>().is_err());
        assert!(
            "attack = theta\naxis theta_change = 0.1\naxis theta_change = 0.2"
                .parse::<ScenarioSpec>()
                .is_err()
        );
        let oversized = format!("attack = theta\n# {}", "x".repeat(MAX_SPEC_TEXT));
        assert!(oversized.parse::<ScenarioSpec>().is_err());
    }

    #[test]
    fn validation_enforces_family_axis_compatibility() {
        let mut spec = il_spec();
        spec.validate().unwrap();

        spec.family = AttackFamily::Theta;
        assert!(
            spec.validate().is_err(),
            "rel_change axis on a theta family"
        );

        let mut spec = il_spec();
        spec.axes.clear();
        assert!(spec.validate().is_err(), "no axes");

        let mut spec = il_spec();
        spec.axes[0] = Axis::real(AxisKind::RelChange, vec![]);
        assert!(spec.validate().is_err(), "empty axis");

        let mut spec = il_spec();
        spec.axes.push(Axis::real(AxisKind::RelChange, vec![0.1]));
        assert!(spec.validate().is_err(), "duplicate axis kind");

        let mut spec = il_spec();
        spec.axes[0] = Axis::real(AxisKind::RelChange, vec![1.5]);
        assert!(spec.validate().is_err(), "rel_change outside (-1, 1)");

        let mut spec = il_spec();
        spec.seeds.clear();
        assert!(spec.validate().is_err(), "no seeds");

        let mut spec = il_spec();
        spec.axes.push(Axis::real(AxisKind::Vdd, vec![0.9]));
        assert!(
            spec.validate().is_err(),
            "vdd axis without a transfer table"
        );
        spec.transfer = Some(PowerTransferTable::paper_nominal().points().to_vec());
        spec.validate().unwrap();

        let mut spec = il_spec();
        spec.axes.push(Axis::seeds(vec![1, 2]));
        assert!(spec.validate().is_err(), "seed axis plus averaged seeds");
        spec.seeds.clear();
        spec.validate().unwrap();
        assert_eq!(spec.baseline_seeds(), &[1, 2]);
    }

    #[test]
    fn validation_rejects_polarity_products_outside_the_primary_range() {
        // polarity × primary is applied at planning time; a product
        // outside the primary axis's range must fail *validation*, not
        // poison a fleet cell by cell after acceptance.
        let mut spec = il_spec();
        spec.axes
            .push(Axis::real(AxisKind::Polarity, vec![1.0, -4.0]));
        // rel_change 0.2 × -4 = -0.8: still in (-1, 1) → fine.
        spec.validate().unwrap();
        spec.axes[0] = Axis::real(AxisKind::RelChange, vec![0.3]);
        // 0.3 × -4 = -1.2: outside (-1, 1) → rejected with the product.
        let err = spec.validate().unwrap_err().to_string();
        assert!(err.contains("polarity"), "diagnostic: {err}");

        let theta = ScenarioSpec {
            family: AttackFamily::Theta,
            axes: vec![
                Axis::real(AxisKind::ThetaChange, vec![0.5]),
                Axis::real(AxisKind::Polarity, vec![-3.0]),
            ],
            seeds: vec![42],
            transfer: None,
        };
        assert!(theta.validate().is_err(), "0.5 × -3 = -1.5 is impossible");
    }

    #[test]
    fn value_labels_are_lossless_grammar_tokens() {
        let real = Axis::real(AxisKind::RelChange, vec![0.1 + 0.2]);
        let label = real.value_label(0).unwrap();
        assert_eq!(
            label.parse::<f64>().unwrap().to_bits(),
            (0.1 + 0.2f64).to_bits()
        );
        assert!(real.value_label(1).is_none());
        let layer = Axis::layers(vec![LayerSel::Both]);
        assert_eq!(layer.value_label(0).as_deref(), Some("both"));
        // Seeds above 2^53 survive (no f64 round trip).
        let seed = Axis::seeds(vec![9_007_199_254_740_993]);
        assert_eq!(seed.value_label(0).as_deref(), Some("9007199254740993"));
    }

    #[test]
    fn planner_is_row_major_and_matches_the_legacy_threshold_planner() {
        let config = SweepConfig {
            rel_changes: vec![-0.2, 0.2],
            fractions: vec![0.0, 0.5, 1.0],
            seeds: vec![1, 2],
        };
        let spec = ScenarioSpec::threshold(Some(TargetLayer::Inhibitory), &config);
        let plan = spec.plan();
        let legacy = plan_threshold_sweep(Some(TargetLayer::Inhibitory), &config);
        assert_eq!(plan, legacy, "the legacy wrapper is the same planner");
        assert_eq!(plan.jobs.len(), 6);
        assert!(plan.jobs.iter().enumerate().all(|(i, j)| j.index == i));
        // Row-major: rel_change slowest.
        let coords: Vec<(f64, f64)> = plan.jobs.iter().map(|j| j.attack.coordinates()).collect();
        assert_eq!(
            coords,
            vec![
                (-0.2, 0.0),
                (-0.2, 0.5),
                (-0.2, 1.0),
                (0.2, 0.0),
                (0.2, 0.5),
                (0.2, 1.0)
            ]
        );
    }

    #[test]
    fn cross_product_scenarios_compose_components() {
        let spec = ScenarioSpec {
            family: AttackFamily::Threshold(LayerSel::Inhibitory),
            axes: vec![
                Axis::real(AxisKind::RelChange, vec![-0.2]),
                Axis::real(AxisKind::Vdd, vec![0.9, 1.0]),
            ],
            seeds: vec![42],
            transfer: Some(PowerTransferTable::paper_nominal().points().to_vec()),
        };
        spec.validate().unwrap();
        let plan = spec.plan();
        assert_eq!(plan.jobs.len(), 2);
        assert_eq!(plan.jobs[0].attack.rel_change, Some(-0.2));
        assert_eq!(plan.jobs[0].attack.vdd, Some(0.9));
        assert_eq!(plan.jobs[1].attack.vdd, Some(1.0));
        // The threshold grid stays the addressable surface.
        assert_eq!(plan.jobs[1].attack.coordinates(), (-0.2, 1.0));
    }

    #[test]
    fn polarity_and_layer_axes_resolve_per_cell() {
        let spec = ScenarioSpec {
            family: AttackFamily::Threshold(LayerSel::Inhibitory),
            axes: vec![
                Axis::real(AxisKind::RelChange, vec![0.2]),
                Axis::real(AxisKind::Polarity, vec![1.0, -1.0]),
                Axis::layers(vec![LayerSel::Excitatory, LayerSel::Both]),
            ],
            seeds: vec![42],
            transfer: None,
        };
        spec.validate().unwrap();
        let plan = spec.plan();
        assert_eq!(plan.jobs.len(), 4);
        assert_eq!(plan.jobs[0].attack.rel_change, Some(0.2));
        assert_eq!(
            plan.jobs[0].attack.family,
            AttackFamily::Threshold(LayerSel::Excitatory)
        );
        assert_eq!(
            plan.jobs[1].attack.family,
            AttackFamily::Threshold(LayerSel::Both)
        );
        assert_eq!(plan.jobs[2].attack.rel_change, Some(-0.2));
        // The scenario-level kind keeps the family default.
        assert_eq!(plan.kind, AttackKind::InhibitoryThreshold);
    }

    #[test]
    fn seed_axis_overrides_per_cell_seeds() {
        let spec = ScenarioSpec {
            family: AttackFamily::Theta,
            axes: vec![
                Axis::real(AxisKind::ThetaChange, vec![-0.2]),
                Axis::seeds(vec![7, 8]),
            ],
            seeds: vec![],
            transfer: None,
        };
        spec.validate().unwrap();
        let plan = spec.plan();
        assert_eq!(plan.seeds, vec![7, 8], "baselines are primed over the axis");
        assert_eq!(plan.jobs[0].attack.seed, Some(7));
        assert_eq!(plan.jobs[1].attack.seed, Some(8));
    }

    #[test]
    fn defense_and_detector_axes_parse_validate_and_resolve() {
        let axis = Axis::parse("defense = none, bandgap_threshold, robust_driver").unwrap();
        assert_eq!(
            axis.values,
            AxisValues::Defense(vec![
                DefenseSel::None,
                DefenseSel::BandgapThreshold,
                DefenseSel::RobustDriver
            ])
        );
        let axis = Axis::parse("detector = none, dummy_neuron").unwrap();
        assert_eq!(
            axis.values,
            AxisValues::Detector(vec![DetectorSel::None, DetectorSel::DummyNeuron])
        );
        assert!(Axis::parse("defense = firewall").is_err());
        assert!(Axis::parse("detector = antivirus").is_err());

        // Non-`none` countermeasures act through the VDD path, so they
        // need a vdd axis; the explicit all-`none` spelling does not.
        let mut spec = il_spec();
        spec.axes
            .push(Axis::defenses(vec![DefenseSel::BandgapThreshold]));
        assert!(spec.validate().is_err(), "defense without a vdd axis");
        spec.axes.pop();
        spec.axes
            .push(Axis::detectors(vec![DetectorSel::DummyNeuron]));
        assert!(spec.validate().is_err(), "detector without a vdd axis");
        spec.axes.pop();
        spec.axes.push(Axis::defenses(vec![DefenseSel::None]));
        spec.axes.push(Axis::detectors(vec![DetectorSel::None]));
        spec.validate().unwrap();

        let spec = ScenarioSpec {
            family: AttackFamily::Vdd,
            axes: vec![
                Axis::real(AxisKind::Vdd, vec![0.8, 1.0]),
                Axis::defenses(vec![DefenseSel::None, DefenseSel::BandgapThreshold]),
                Axis::detectors(vec![DetectorSel::DummyNeuron]),
            ],
            seeds: vec![42],
            transfer: Some(PowerTransferTable::paper_nominal().points().to_vec()),
        };
        spec.validate().unwrap();
        let plan = spec.plan();
        assert_eq!(plan.jobs.len(), 4);
        assert_eq!(plan.jobs[0].attack.defense, DefenseSel::None);
        assert_eq!(plan.jobs[1].attack.defense, DefenseSel::BandgapThreshold);
        assert_eq!(
            plan.jobs[1].attack.vdd,
            Some(0.8),
            "defense is the fast axis"
        );
        assert!(plan
            .jobs
            .iter()
            .all(|j| j.attack.detector == DetectorSel::DummyNeuron));

        // The text form round-trips the new axes bit-exactly.
        let text = spec.to_string();
        assert!(
            text.contains("axis defense = none, bandgap_threshold"),
            "{text}"
        );
        assert!(text.contains("axis detector = dummy_neuron"), "{text}");
        let reparsed: ScenarioSpec = text.parse().unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn neurons_axis_parses_validates_and_resolves() {
        let axis = Axis::parse("neurons = 1, 32, 200").unwrap();
        assert_eq!(axis.values, AxisValues::Neurons(vec![1, 32, 200]));
        assert!(Axis::parse("neurons = 1.5").is_err());

        // The layer-netlist workload only exists for the vdd attack.
        let mut spec = il_spec();
        spec.axes.push(Axis::neurons(vec![8]));
        assert!(spec.validate().is_err(), "neurons without the vdd family");

        let mut spec = ScenarioSpec {
            family: AttackFamily::Vdd,
            axes: vec![
                Axis::real(AxisKind::Vdd, vec![0.8, 1.0]),
                Axis::neurons(vec![4, 32]),
            ],
            seeds: vec![42],
            transfer: Some(PowerTransferTable::paper_nominal().points().to_vec()),
        };
        spec.validate().unwrap();

        // Counts must stay within the compiled layer-size ceiling.
        spec.axes[1] = Axis::neurons(vec![0]);
        assert!(spec.validate().is_err(), "zero neurons");
        spec.axes[1] = Axis::neurons(vec![MAX_LAYER_NEURONS + 1]);
        assert!(spec.validate().is_err(), "oversized layer");
        spec.axes[1] = Axis::neurons(vec![4, 32]);

        // Only defenses with a circuit realisation compose with a layer.
        spec.axes
            .push(Axis::defenses(vec![DefenseSel::BandgapThreshold]));
        assert!(spec.validate().is_err(), "transfer-table-only defense");
        spec.axes.pop();
        spec.axes.push(Axis::defenses(vec![
            DefenseSel::None,
            DefenseSel::Comparator,
        ]));
        spec.validate().unwrap();
        spec.axes.pop();

        let plan = spec.plan();
        assert_eq!(plan.jobs.len(), 4);
        assert_eq!(plan.jobs[0].attack.neurons, Some(4));
        assert_eq!(
            plan.jobs[1].attack.neurons,
            Some(32),
            "neurons is fast axis"
        );
        assert_eq!(plan.jobs[2].attack.vdd, Some(1.0));

        // The text form round-trips the new axis bit-exactly.
        let text = spec.to_string();
        assert!(text.contains("axis neurons = 4, 32"), "{text}");
        let reparsed: ScenarioSpec = text.parse().unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn countermeasure_sel_names_round_trip() {
        for sel in [
            DefenseSel::None,
            DefenseSel::RobustDriver,
            DefenseSel::BandgapThreshold,
            DefenseSel::SizedNeuron,
            DefenseSel::Comparator,
        ] {
            assert_eq!(DefenseSel::parse(sel.name()).unwrap(), sel);
        }
        for sel in [DetectorSel::None, DetectorSel::DummyNeuron] {
            assert_eq!(DetectorSel::parse(sel.name()).unwrap(), sel);
        }
        // Hostile tokens are rejected with a clipped echo.
        let huge = "x".repeat(MAX_SPEC_TEXT / 2);
        let err = DefenseSel::parse(&huge).unwrap_err().to_string();
        assert!(
            err.len() < 2 * MAX_NAME_LEN + 128,
            "echo is clipped: {}",
            err.len()
        );
        assert!(DetectorSel::parse(&huge).is_err());
        // Only the undefended selection maps to no hardening.
        assert!(DefenseSel::None.defense().is_none());
        assert!(DefenseSel::BandgapThreshold.defense().is_some());
    }

    #[test]
    fn family_names_round_trip() {
        for family in AttackFamily::ALL {
            assert_eq!(AttackFamily::parse(family.name()).unwrap(), family);
        }
        assert!(AttackFamily::parse("nope").is_err());
        assert!(AttackFamily::parse(&"x".repeat(MAX_NAME_LEN + 1)).is_err());
        assert_eq!(
            AttackFamily::Threshold(LayerSel::Both).kind(),
            AttackKind::BothLayerThreshold
        );
    }
}
