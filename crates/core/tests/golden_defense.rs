//! Golden §V regression vectors: the four defenses' residual
//! sensitivities (hardened transfer points, bit-exact), their paper
//! overhead numbers, and the §V-C dummy-neuron detector's 10% rule are
//! pinned to a committed file. A drift here means the paper-fidelity
//! surface moved under a refactor; an intentional change must
//! regenerate with `UPDATE_GOLDEN=1` and say so in review.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use neurofi_core::detection::{self, DummyNeuronDetector};
use neurofi_core::{Defense, PowerTransferTable};

/// The four §V defenses under their axis-grammar names.
fn defenses() -> Vec<(&'static str, Defense)> {
    vec![
        ("robust_driver", Defense::RobustDriver),
        ("bandgap_threshold", Defense::BandgapThreshold),
        ("sized_neuron", Defense::sized_neuron_paper()),
        ("comparator", Defense::ComparatorFirstStage),
    ]
}

fn render() -> String {
    let table = PowerTransferTable::paper_nominal();
    let mut out = String::from(
        "# Golden §V countermeasure vectors over the paper-nominal transfer table.\n\
         # residual <defense> <vdd> <drive_bits> <ah_bits> <if_bits> — hardened point, IEEE-754 bits\n\
         # overhead <defense> <power%> <area%>\n\
         # detector <vdd> <deviation%_bits> <flagged> — dummy-neuron count deviation vs the 10% rule\n\
         # Regenerate with: UPDATE_GOLDEN=1 cargo test -p neurofi-core --test golden_defense\n",
    );
    for (name, defense) in defenses() {
        let hardened = defense.harden_table(&table);
        for point in hardened.points() {
            writeln!(
                out,
                "residual {name} {} {:016x} {:016x} {:016x}",
                point.vdd,
                point.drive_scale.to_bits(),
                point.ah_threshold_scale.to_bits(),
                point.if_threshold_scale.to_bits(),
            )
            .unwrap();
        }
        let overhead = defense.paper_overhead();
        writeln!(
            out,
            "overhead {name} {} {}",
            overhead.power_percent, overhead.area_percent
        )
        .unwrap();
    }
    // The detector watches the *undefended* supply: enroll at the
    // nominal count and replay every table point through the 10% rule.
    const ENROLLED_COUNT: f64 = 1000.0;
    let detector = DummyNeuronDetector::new(ENROLLED_COUNT).unwrap();
    let nominal = detection::dummy_count_scale(detection::VDD_NOMINAL, &table);
    for point in table.points() {
        let observed = ENROLLED_COUNT * detection::dummy_count_scale(point.vdd, &table) / nominal;
        writeln!(
            out,
            "detector {} {:016x} {}",
            point.vdd,
            (detector.deviation(observed) * 100.0).to_bits(),
            detector.is_attack(observed),
        )
        .unwrap();
    }
    out
}

fn vector_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/defense.txt")
}

#[test]
fn section_v_countermeasures_match_committed_vectors() {
    let rendered = render();
    let path = vector_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); bless initial vectors with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        committed, rendered,
        "§V countermeasure numbers drifted from the committed golden \
         vectors. If intentional, regenerate with UPDATE_GOLDEN=1 and \
         call it out."
    );
}

#[test]
fn golden_vectors_encode_the_paper_claims() {
    // Sanity net under the bit-exact pin: the committed numbers must
    // still *mean* what §V claims — every defense shrinks its protected
    // column's 0.8 V excursion to within the bandgap residual (or the
    // sizing ratio), and the detector trips at deep undervolting while
    // staying quiet at nominal.
    let table = PowerTransferTable::paper_nominal();
    for (name, defense) in defenses() {
        let stock = table.sample(0.8);
        let hardened = defense.harden_table(&table).sample(0.8);
        let (stock_excursion, residual) = match defense {
            Defense::RobustDriver => (stock.drive_scale - 1.0, hardened.drive_scale - 1.0),
            Defense::BandgapThreshold => (
                stock.if_threshold_scale - 1.0,
                hardened.if_threshold_scale - 1.0,
            ),
            Defense::SizedNeuron { .. } | Defense::ComparatorFirstStage => (
                stock.ah_threshold_scale - 1.0,
                hardened.ah_threshold_scale - 1.0,
            ),
        };
        assert!(
            residual.abs() < stock_excursion.abs() / 3.0,
            "{name}: residual {residual} vs stock {stock_excursion}"
        );
    }
    let detector = DummyNeuronDetector::new(1000.0).unwrap();
    let nominal = detection::dummy_count_scale(detection::VDD_NOMINAL, &table);
    let attacked = 1000.0 * detection::dummy_count_scale(0.8, &table) / nominal;
    assert!(detector.is_attack(attacked), "0.8 V must trip the 10% rule");
    assert!(!detector.is_attack(1000.0), "nominal must stay quiet");
}
