//! Cross-crate integration: the transistor-level characterisation feeds
//! the network-level attack models, reproducing the paper's circuit →
//! BindsNET bridge.

use neurofi::analog::characterize::measured_transfer_table;
use neurofi::core::{FaultPlan, PowerTransferTable};

#[test]
fn measured_transfer_table_matches_paper_nominal_shape() {
    let measured = measured_transfer_table(&[0.8, 1.0, 1.2]).unwrap();
    let paper = PowerTransferTable::paper_nominal();
    for vdd in [0.8, 1.0, 1.2] {
        let m = measured.sample(vdd);
        let p = paper.sample(vdd);
        assert!(
            (m.drive_scale - p.drive_scale).abs() < 0.08,
            "drive at {vdd}: measured {:.3} vs paper {:.3}",
            m.drive_scale,
            p.drive_scale
        );
        assert!(
            (m.if_threshold_scale - p.if_threshold_scale).abs() < 0.06,
            "IF threshold at {vdd}: measured {:.3} vs paper {:.3}",
            m.if_threshold_scale,
            p.if_threshold_scale
        );
        assert!(
            (m.ah_threshold_scale - p.ah_threshold_scale).abs() < 0.06,
            "AH threshold at {vdd}: measured {:.3} vs paper {:.3}",
            m.ah_threshold_scale,
            p.ah_threshold_scale
        );
    }
}

#[test]
fn circuit_measured_fault_plan_is_close_to_paper_plan() {
    let measured = measured_transfer_table(&[0.8, 1.0, 1.2]).unwrap();
    let from_measured = FaultPlan::from_vdd(0.8, &measured);
    let from_paper = FaultPlan::from_vdd(0.8, &PowerTransferTable::paper_nominal());
    let rel_m = from_measured.thresholds[0].rel_change;
    let rel_p = from_paper.thresholds[0].rel_change;
    assert!(
        (rel_m - rel_p).abs() < 0.06,
        "threshold corruption: measured {rel_m:.3} vs paper {rel_p:.3}"
    );
    let drive_m = from_measured.drive.unwrap().scale;
    let drive_p = from_paper.drive.unwrap().scale;
    assert!(
        (drive_m - drive_p).abs() < 0.08,
        "drive corruption: measured {drive_m:.3} vs paper {drive_p:.3}"
    );
}

#[test]
fn spice_deck_runs_through_the_facade() {
    // The text-netlist path: parse, compile, simulate, measure.
    let deck = neurofi::spice::parse::parse_deck(
        "integrator bench\n\
         IIN 0 mem PULSE(0 200n 0 1n 1n 10n 25n)\n\
         CMEM mem 0 1p\n\
         .tran 2n 5u uic\n\
         .end\n",
    )
    .unwrap();
    let spec = deck.tran.clone().unwrap();
    let result = deck.netlist.compile().unwrap().tran(&spec).unwrap();
    let mem = deck.netlist.find_node("mem").unwrap();
    let v = result.voltage(mem);
    let v_end = *v.last().unwrap();
    // Average current 200nA·(12/25 duty incl. edges) on 1 pF for 5 µs
    // ≈ 0.44 V; accept a broad band (edge shapes vary).
    assert!(
        v_end > 0.3 && v_end < 0.6,
        "integrated membrane voltage {v_end:.3} out of band"
    );
}

#[test]
fn dummy_neuron_detection_pipeline() {
    // Circuit-level dummy rates → core detector → flags at VDD extremes.
    let dummy = neurofi::analog::dummy::DummyNeuron::new(neurofi::analog::NeuronKind::AxonHillock);
    let window = 0.1;
    let counts: Vec<(f64, f64)> = [0.8, 1.0, 1.2]
        .iter()
        .map(|&vdd| (vdd, dummy.expected_spike_count(vdd, window).unwrap()))
        .collect();
    let detector = neurofi::core::DummyNeuronDetector::from_characterisation(&counts, 1.0).unwrap();
    let rows = neurofi::core::detection::evaluate_series(&detector, &counts);
    assert!(rows[0].flagged, "VDD=0.8 must be flagged");
    assert!(!rows[1].flagged, "nominal must not be flagged");
    assert!(rows[2].flagged, "VDD=1.2 must be flagged");
}
