//! Facade coverage and cross-crate property-based tests.

use proptest::prelude::*;

#[test]
fn facade_reexports_every_layer() {
    // One representative item per re-exported crate.
    let _ = neurofi::spice::device::MosModel::ptm65_nmos();
    let _ = neurofi::analog::BandgapReference::new(0.5);
    let _ = neurofi::snn::diehl_cook::DiehlCookConfig::default();
    let _ = neurofi::data::SynthDigits::default();
    let _ = neurofi::core::PowerTransferTable::paper_nominal();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The transfer table interpolates within the convex hull of its
    /// points for any VDD.
    #[test]
    fn transfer_table_sampling_is_bounded(vdd in 0.5f64..1.5) {
        let table = neurofi::core::PowerTransferTable::paper_nominal();
        let p = table.sample(vdd);
        prop_assert!(p.drive_scale >= 0.68 - 1e-12 && p.drive_scale <= 1.32 + 1e-12);
        prop_assert!(p.if_threshold_scale >= 0.8199 - 1e-12);
        prop_assert!(p.if_threshold_scale <= 1.1714 + 1e-12);
    }

    /// Fault plans never select more neurons than requested and indices
    /// stay in range for any fraction and population size.
    #[test]
    fn fault_plan_selection_is_well_formed(
        n in 1usize..500,
        fraction in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        use neurofi::core::{FaultPlan, Selection};
        for selection in [Selection::FirstK, Selection::RandomSeeded(seed)] {
            let chosen = FaultPlan::affected_indices(n, fraction, selection);
            prop_assert!(chosen.len() <= n);
            prop_assert!(chosen.iter().all(|&i| i < n));
            // No duplicates.
            let mut sorted = chosen.clone();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), chosen.len());
            // Rounded sizing.
            let expect = ((n as f64) * fraction).round() as usize;
            prop_assert_eq!(chosen.len(), expect.min(n));
        }
    }

    /// Synthetic digits are valid images for any label and seed.
    #[test]
    fn synth_digits_always_render(seed in any::<u64>(), n in 1usize..30) {
        let data = neurofi::data::SynthDigits::default().generate(n, seed);
        prop_assert_eq!(data.len(), n);
        for (img, label) in data.iter() {
            prop_assert_eq!(img.len(), 784);
            prop_assert!(label < 10);
        }
    }

    /// Table CSV output always has a consistent column count.
    #[test]
    fn table_csv_is_rectangular(cells in proptest::collection::vec("[a-z,\"\n]{0,8}", 9)) {
        let mut t = neurofi::core::Table::new("p", &["a", "b", "c"]);
        for chunk in cells.chunks(3) {
            t.push_row(&[chunk[0].clone(), chunk[1].clone(), chunk[2].clone()]);
        }
        let csv = t.to_csv();
        let mut reader = csv.lines();
        // Naive column check only for rows without quoted cells.
        let header_cols = reader.next().unwrap().split(',').count();
        prop_assert_eq!(header_cols, 3);
    }

    /// Waveform evaluation is finite for arbitrary (sane) pulse settings.
    #[test]
    fn pulse_waveform_is_finite(
        v1 in -2.0f64..2.0,
        v2 in -2.0f64..2.0,
        t in 0.0f64..1.0e-3,
        width in 1.0e-9f64..1.0e-5,
        period_mult in 2.0f64..10.0,
    ) {
        let w = neurofi::spice::Waveform::Pulse {
            v1,
            v2,
            delay: 1.0e-9,
            rise: 1.0e-9,
            fall: 1.0e-9,
            width,
            period: width * period_mult,
        };
        let v = w.value(t);
        prop_assert!(v.is_finite());
        prop_assert!(v >= v1.min(v2) - 1e-12 && v <= v1.max(v2) + 1e-12);
    }
}
