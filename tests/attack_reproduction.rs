//! End-to-end reproduction of the paper's attack ordering at reduced
//! scale: baseline accuracy is healthy, the inhibitory-layer and global
//! VDD attacks are catastrophic, the excitatory/theta attacks are mild,
//! and the defenses restore accuracy.
//!
//! The full-scale numbers (paper grids, 1000 training images) live in
//! EXPERIMENTS.md and are produced by the `repro` binary; this test keeps
//! the whole pipeline honest in minutes.

use neurofi::analog::NeuronKind;
use neurofi::core::attacks::{
    Attack, ExperimentSetup, GlobalVddAttack, InputCorruptionAttack, ThresholdAttack,
};
use neurofi::core::defense::{defended_vdd_attack, Defense};
use neurofi::core::PowerTransferTable;

fn setup() -> ExperimentSetup {
    ExperimentSetup::quick(42)
}

#[test]
fn attack_severity_ordering_matches_paper() {
    let setup = setup();
    let baseline = setup.baseline();
    assert!(
        baseline.accuracy > 0.35,
        "baseline accuracy {:.2} too low for a meaningful attack comparison",
        baseline.accuracy
    );

    // Attack 3 (IL, −20%): catastrophic — the paper's −84.52%.
    let il = ThresholdAttack::inhibitory(-0.20, 1.0)
        .run_with_baseline(&setup, baseline)
        .unwrap();
    assert!(
        il.attacked_accuracy < 0.5 * baseline.accuracy,
        "IL attack should collapse accuracy: {:.2} vs baseline {:.2}",
        il.attacked_accuracy,
        baseline.accuracy
    );

    // Attack 2 (EL, −20%): mild — the paper's −7.32% worst case.
    let el = ThresholdAttack::excitatory(-0.20, 1.0)
        .run_with_baseline(&setup, baseline)
        .unwrap();
    assert!(
        el.attacked_accuracy > 0.6 * baseline.accuracy,
        "EL attack should stay mild: {:.2} vs baseline {:.2}",
        el.attacked_accuracy,
        baseline.accuracy
    );

    // Attack 1 (theta ±20%): mild — the paper's ±2% band.
    let theta = InputCorruptionAttack::new(-0.20)
        .run_with_baseline(&setup, baseline)
        .unwrap();
    assert!(
        theta.attacked_accuracy > 0.6 * baseline.accuracy,
        "theta attack should stay mild: {:.2} vs baseline {:.2}",
        theta.attacked_accuracy,
        baseline.accuracy
    );

    // Attack 5 (VDD = 0.8 V): catastrophic — the paper's −84.93%.
    let vdd = GlobalVddAttack::new(0.8)
        .run_with_baseline(&setup, baseline)
        .unwrap();
    assert!(
        vdd.attacked_accuracy < 0.5 * baseline.accuracy,
        "global VDD attack should collapse accuracy: {:.2} vs baseline {:.2}",
        vdd.attacked_accuracy,
        baseline.accuracy
    );

    // Severity ordering: IL and VDD are the catastrophic pair.
    assert!(il.attacked_accuracy < el.attacked_accuracy);
    assert!(vdd.attacked_accuracy < el.attacked_accuracy);
}

#[test]
fn bandgap_defense_recovers_global_vdd_attack() {
    let setup = setup();
    let transfer = PowerTransferTable::paper_nominal();
    let defended = defended_vdd_attack(
        &setup,
        0.8,
        &transfer,
        &[Defense::RobustDriver, Defense::BandgapThreshold],
        NeuronKind::VoltageAmplifierIf,
    )
    .unwrap();
    assert!(
        defended.attacked_accuracy > 0.85 * defended.baseline_accuracy,
        "defended accuracy {:.2} should be near baseline {:.2}",
        defended.attacked_accuracy,
        defended.baseline_accuracy
    );
}

#[test]
fn fraction_zero_attack_is_harmless() {
    let setup = setup();
    let baseline = setup.baseline();
    let outcome = ThresholdAttack::inhibitory(-0.20, 0.0)
        .run_with_baseline(&setup, baseline)
        .unwrap();
    assert_eq!(outcome.attacked_accuracy, baseline.accuracy);
}
