//! Both Diehl&Cook prediction schemes (all-activity and proportion
//! weighting) work end to end on a trained network and land in the same
//! accuracy regime.

use neurofi::core::attacks::ExperimentSetup;
use neurofi::snn::classify::ClassProportions;
use neurofi::snn::diehl_cook::DiehlCook2015;
use neurofi::snn::predict_all_activity;
use neurofi::snn::trainer::{train, TrainOptions};

#[test]
fn proportion_weighting_matches_all_activity_regime() {
    let mut setup = ExperimentSetup::quick(42);
    setup.n_train = 300;
    setup.n_test = 120;
    let (train_data, test_data) = setup.datasets();
    let mut net = DiehlCook2015::new(setup.network.clone(), setup.network_seed);
    let options = TrainOptions::default();
    let report = train(&mut net, &train_data, &options);

    let window = options
        .assignment_window
        .unwrap_or(report.spike_records.len())
        .min(report.spike_records.len());
    let start = report.spike_records.len() - window;
    let proportions = ClassProportions::from_records(
        &report.spike_records[start..],
        &report.labels[start..],
        options.n_classes,
    );

    net.set_sample_counter(1 << 32);
    let mut all_activity_correct = 0usize;
    let mut proportion_correct = 0usize;
    for (image, label) in test_data.iter() {
        let counts = net.run_sample(image, false);
        if predict_all_activity(&counts, &report.assignments, options.n_classes) == label as usize {
            all_activity_correct += 1;
        }
        if proportions.predict(&counts) == label as usize {
            proportion_correct += 1;
        }
    }
    let aa = all_activity_correct as f64 / test_data.len() as f64;
    let pw = proportion_correct as f64 / test_data.len() as f64;
    assert!(aa > 0.3, "all-activity accuracy {aa:.2} too low");
    assert!(pw > 0.3, "proportion accuracy {pw:.2} too low");
    // The schemes should agree within a broad band (BindsNET reports them
    // within a few points of each other).
    assert!(
        (aa - pw).abs() < 0.25,
        "schemes diverged: all-activity {aa:.2} vs proportion {pw:.2}"
    );
}
