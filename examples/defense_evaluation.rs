//! Evaluate the paper's §V defenses against the black-box VDD attack:
//! accuracy recovery and overhead accounting.
//!
//! ```text
//! cargo run --release --example defense_evaluation
//! ```

use neurofi::analog::NeuronKind;
use neurofi::core::attacks::ExperimentSetup;
use neurofi::core::defense::{defended_vdd_attack, undefended_vdd_attack, Defense};
use neurofi::core::{PowerTransferTable, Table};

fn main() -> Result<(), neurofi::core::Error> {
    let setup = ExperimentSetup::quick(42);
    let transfer = PowerTransferTable::paper_nominal();
    let vdd = 0.8; // the paper's worst-case supply

    println!("Attack 5 at VDD = {vdd} V, undefended vs defended...\n");

    let mut table = Table::new(
        "Defense effectiveness (Attack 5, VDD = 0.8 V)",
        &["configuration", "accuracy", "vs baseline"],
    );

    let undefended = undefended_vdd_attack(&setup, vdd, &transfer, NeuronKind::VoltageAmplifierIf)?;
    table.push_row(&[
        "undefended".into(),
        format!("{:.1}%", undefended.attacked_accuracy * 100.0),
        format!("{:+.1}%", undefended.relative_change_percent()),
    ]);

    for (label, defenses, flavor) in [
        (
            "robust driver + bandgap Vthr",
            vec![Defense::RobustDriver, Defense::BandgapThreshold],
            NeuronKind::VoltageAmplifierIf,
        ),
        (
            "robust driver + sized AH neuron",
            vec![Defense::RobustDriver, Defense::sized_neuron_paper()],
            NeuronKind::AxonHillock,
        ),
        (
            "robust driver + comparator AH",
            vec![Defense::RobustDriver, Defense::ComparatorFirstStage],
            NeuronKind::AxonHillock,
        ),
    ] {
        let outcome = defended_vdd_attack(&setup, vdd, &transfer, &defenses, flavor)?;
        table.push_row(&[
            label.into(),
            format!("{:.1}%", outcome.attacked_accuracy * 100.0),
            format!("{:+.1}%", outcome.relative_change_percent()),
        ]);
    }
    table.push_note(format!(
        "baseline accuracy {:.1}%",
        undefended.baseline_accuracy * 100.0
    ));
    println!("{table}");

    let mut overheads = Table::new(
        "Defense overheads (paper §V)",
        &["defense", "power", "area", "notes"],
    );
    for defense in [
        Defense::RobustDriver,
        Defense::BandgapThreshold,
        Defense::sized_neuron_paper(),
        Defense::ComparatorFirstStage,
    ] {
        let oh = defense.paper_overhead();
        overheads.push_row(&[
            format!("{defense:?}"),
            format!("+{:.0}%", oh.power_percent),
            format!("+{:.0}%", oh.area_percent),
            oh.notes.into(),
        ]);
    }
    println!("{overheads}");
    Ok(())
}
