//! Simulate both analog neurons at the transistor level and dump their
//! waveforms (paper Figs. 3 and 4) as CSV files.
//!
//! ```text
//! cargo run --release --example circuit_waveforms -- [OUT_DIR]
//! ```

use std::fs;
use std::path::PathBuf;

use neurofi::analog::axon_hillock::{AxonHillock, InputSpec};
use neurofi::analog::vamp_if::VoltageAmplifierIf;
use neurofi::analog::NeuronWaveforms;

fn write_csv(path: &PathBuf, wave: &NeuronWaveforms) -> std::io::Result<()> {
    let mut csv = String::from("t_us,vmem_V,vout_V,supply_uA\n");
    for i in 0..wave.times.len() {
        csv.push_str(&format!(
            "{:.4},{:.5},{:.5},{:.4}\n",
            wave.times[i] * 1e6,
            wave.vmem[i],
            wave.vout[i],
            wave.supply_current[i] * 1e6
        ));
    }
    fs::write(path, csv)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = PathBuf::from(std::env::args().nth(1).unwrap_or_else(|| "out".to_string()));
    fs::create_dir_all(&out_dir)?;

    println!("simulating the Axon Hillock neuron (Fig. 3)...");
    let ah = AxonHillock::default();
    let ah_wave = ah.simulate(1.0, &InputSpec::paper_axon_hillock(), 45.0e-6, 20.0e-9)?;
    let spikes = ah_wave.output_spike_times();
    println!(
        "  {} spikes, mean period {:.2} us, threshold {:.3} V, avg power {:.2} uW",
        spikes.len(),
        ah_wave.mean_output_period().unwrap_or(f64::NAN) * 1e6,
        ah.threshold(1.0)?,
        ah_wave.average_supply_power() * 1e6
    );
    let ah_path = out_dir.join("fig3_axon_hillock.csv");
    write_csv(&ah_path, &ah_wave)?;
    println!("  wrote {}", ah_path.display());

    println!("simulating the voltage-amplifier I&F neuron (Fig. 4)...");
    let vif = VoltageAmplifierIf::default();
    let vif_wave = vif.simulate(1.0, &InputSpec::paper_vamp_if(), 600.0e-6, 50.0e-9, true)?;
    let mem_spikes = neurofi::spice::measure::spike_times(&vif_wave.times, &vif_wave.vmem, 0.45);
    println!(
        "  {} membrane spikes, effective threshold {:.3} V, avg power {:.2} uW",
        mem_spikes.len(),
        vif.threshold(1.0)?,
        vif_wave.average_supply_power() * 1e6
    );
    let vif_path = out_dir.join("fig4_vamp_if.csv");
    write_csv(&vif_path, &vif_wave)?;
    println!("  wrote {}", vif_path.display());

    Ok(())
}
