//! Dummy-neuron voltage-fault-injection detection (paper §V-C, Fig. 10c):
//! characterise a transistor-level dummy neuron across supply voltages and
//! apply the ≥10% spike-count deviation rule.
//!
//! ```text
//! cargo run --release --example vfi_detection
//! ```

use neurofi::analog::dummy::DummyNeuron;
use neurofi::analog::NeuronKind;
use neurofi::core::detection::{evaluate_series, summarize, DummyNeuronDetector};
use neurofi::core::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window = 0.1; // 100 ms sampling window, as in the paper
    let vdds = [0.8, 0.9, 1.0, 1.1, 1.2];

    println!("characterising the Axon Hillock dummy neuron across VDD...");
    let dummy = DummyNeuron::new(NeuronKind::AxonHillock);
    let mut counts = Vec::new();
    for &vdd in &vdds {
        let count = dummy.expected_spike_count(vdd, window)?;
        counts.push((vdd, count));
        println!("  vdd={vdd:.1} V → {count:.0} spikes / 100 ms");
    }

    let detector = DummyNeuronDetector::from_characterisation(&counts, 1.0)?;
    let rows = evaluate_series(&detector, &counts);

    let mut table = Table::new(
        "Fig. 10c — dummy-neuron VFI detection",
        &["vdd (V)", "count / 100 ms", "deviation", "flagged"],
    );
    for row in &rows {
        table.push_row(&[
            format!("{:.1}", row.vdd),
            format!("{:.0}", row.count),
            format!("{:+.1}%", row.deviation_percent),
            if row.flagged {
                "YES".into()
            } else {
                "no".into()
            },
        ]);
    }
    println!("\n{table}");

    let summary = summarize(&rows, 1.0, 1e-6);
    println!(
        "detected {} of {} off-nominal supplies, {} false positives",
        summary.detected,
        summary.detected + summary.missed,
        summary.false_positives
    );
    println!("note: effective against local glitches only — a global attacker also skews the reference (paper §V-C)");
    Ok(())
}
