//! Quickstart: train the paper's Diehl&Cook SNN on synthetic digits and
//! measure the impact of Attack 3 (inhibitory-layer threshold fault).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use neurofi::core::attacks::ExperimentSetup;
use neurofi::core::{Attack, ThresholdAttack};

fn main() -> Result<(), neurofi::core::Error> {
    // The quick setup trains on 400 synthetic digits at 150 ms per sample
    // (~seconds); swap in `ExperimentSetup::paper(42)` for the paper's
    // full 1000-image protocol.
    let setup = ExperimentSetup::quick(42);

    println!("training baseline and attacked networks (Attack 3, −20% IL threshold)...");
    let outcome = ThresholdAttack::inhibitory(-0.20, 1.0).run(&setup)?;

    println!();
    println!("attack:            {}", outcome.kind);
    println!(
        "baseline accuracy: {:.1}%",
        outcome.baseline_accuracy * 100.0
    );
    println!(
        "attacked accuracy: {:.1}%",
        outcome.attacked_accuracy * 100.0
    );
    println!(
        "relative change:   {:+.2}%  (paper worst case: {:+.2}%)",
        outcome.relative_change_percent(),
        outcome.kind.paper_worst_case_percent()
    );
    println!(
        "activity:          {:.1} → {:.1} spikes/sample",
        outcome.baseline.mean_activity, outcome.attacked.mean_activity
    );
    Ok(())
}
