//! Reproduce a slice of the paper's Fig. 8 accuracy surfaces: threshold
//! change × layer fraction for the excitatory and inhibitory layers.
//!
//! ```text
//! cargo run --release --example attack_sweep -- [--full]
//! ```

use neurofi::core::attacks::ExperimentSetup;
use neurofi::core::sweep::{threshold_sweep_cached, BaselineCache, SweepConfig};
use neurofi::core::{Table, TargetLayer};

fn main() -> Result<(), neurofi::core::Error> {
    let full = std::env::args().any(|a| a == "--full");
    let setup = if full {
        ExperimentSetup::paper(42)
    } else {
        ExperimentSetup::quick(42)
    };
    let config = if full {
        SweepConfig::paper_grid()
    } else {
        SweepConfig::quick_grid()
    };

    // Cells run on the work-stealing pool (one worker per core by
    // default); the fault-free baselines are measured once and shared
    // across both layer sweeps.
    let cache = BaselineCache::new(&setup);
    for (layer, figure, paper_worst) in [
        (TargetLayer::Excitatory, "Fig. 8a", "−7.32%"),
        (TargetLayer::Inhibitory, "Fig. 8b", "−84.52%"),
    ] {
        println!("sweeping the {layer} layer ({figure})...");
        let result = threshold_sweep_cached(&cache, Some(layer), &config)?;
        let mut table = Table::new(
            format!("{figure} — {layer}-layer threshold sweep"),
            &["threshold change", "fraction", "accuracy", "vs baseline"],
        );
        for cell in &result.cells {
            table.push_row(&[
                format!("{:+.0}%", cell.rel_change * 100.0),
                format!("{:.0}%", cell.fraction * 100.0),
                format!("{:.1}%", cell.accuracy * 100.0),
                format!("{:+.1}%", cell.relative_change_percent),
            ]);
        }
        table.push_note(format!(
            "baseline {:.1}%; paper worst case {paper_worst}",
            result.baseline_accuracy * 100.0
        ));
        println!("{table}");
        if let Some(worst) = result.worst_case() {
            println!(
                "worst case: {:+.0}% threshold on {:.0}% of the layer → {:+.1}% accuracy change\n",
                worst.rel_change * 100.0,
                worst.fraction * 100.0,
                worst.relative_change_percent
            );
        }
    }
    Ok(())
}
